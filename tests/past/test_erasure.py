"""Tests for the k-of-n erasure backend.

The load-bearing contract: with coding disabled (k=1) the erasure
backend is byte-equivalent to plain replication — an identical
insert/fetch/delete/churn workload driven through both backends yields
digest-identical rows — and with n > k any n-k share losses (crash or
bit-rot) still decode byte-identical objects.
"""

import itertools
import random

import pytest

from repro.core.resilience import ShareGatherPolicy, ShareHolderHealth
from repro.crypto.hashing import hash_password
from repro.past.erasure import ErasureStore
from repro.past.interface import ObjectStore, iter_store_state
from repro.past.replication import ReplicatedStore, ReplicationError
from repro.past.storage import StorageError
from repro.perf import rows_digest
from repro.util.ids import random_id, ring_distance
from tests.conftest import build_network

REPLICAS = 3


def _workload(store) -> list[dict]:
    """One scripted insert/fetch/delete/churn run, as tidy rows.

    Driven verbatim through both backends; every observable — fetch
    bytes, delete outcomes, live placements, invariants — lands in the
    rows so ``rows_digest`` equality pins full behavioural equality.
    """
    rng = random.Random(2024)
    net = store.network
    rows: list[dict] = []
    corpus: list[tuple[int, bytes, bytes | None]] = []

    for i in range(18):
        key = random_id(rng)
        value = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 48)))
        proof = f"pw{i}".encode() if i % 3 == 0 else None
        store.insert(key, value,
                     hash_password(proof) if proof else None)
        corpus.append((key, value, proof))
        rows.append({"op": "insert", "key": key,
                     "holders": sorted(store.holders(key))})

    def probe_all(tag: str) -> None:
        for key, value, _ in corpus:
            try:
                got = store.fetch(key).value == value
            except (StorageError, KeyError):
                got = None
            rows.append({"op": f"fetch-{tag}", "key": key, "clean": got})

    probe_all("initial")

    # crash a batch of holders, eager-repair, crash more, revive
    for batch in range(2):
        victims = sorted(rng.sample(sorted(net.alive_ids), 6))
        for node_id in victims:
            net.fail(node_id)
            store.on_fail(node_id)
        probe_all(f"churn{batch}")
        for node_id in victims[:3]:
            net.revive(node_id)
            store.on_revive(node_id)
        rows.append({"op": "revived", "batch": batch,
                     "invariants": store.verify_invariants()})

    # deletes: wrong proof, right proof, undeletable
    for key, _, proof in corpus:
        rows.append({"op": "delete-wrong", "key": key,
                     "out": store.delete(key, b"not-the-password")})
    for key, _, proof in corpus:
        if proof is not None:
            rows.append({"op": "delete", "key": key,
                         "out": store.delete(key, proof)})
    probe_all("after-delete")

    rows.extend(
        {"op": "state", "key": key, "holders": holders}
        for key, holders in iter_store_state(store)
    )
    rows.append({"op": "invariants", "problems": store.verify_invariants()})
    return rows


class TestReplicationEquivalence:
    def test_k1_matches_replicated_store_bit_for_bit(self):
        """The coding-disabled contract: k=1 erasure == replication."""
        replicated = ReplicatedStore(build_network(70, seed=31), REPLICAS)
        erasure = ErasureStore(build_network(70, seed=31),
                               data_shares=1, total_shares=REPLICAS,
                               eager_repair=True)
        assert rows_digest(_workload(replicated)) == \
            rows_digest(_workload(erasure))

    def test_both_backends_satisfy_the_protocol(self):
        net = build_network(30, seed=5)
        assert isinstance(ReplicatedStore(net, 2), ObjectStore)
        assert isinstance(ErasureStore(net, 2, 3), ObjectStore)


@pytest.fixture()
def lazy_store():
    """(2,4) coded store with lazy repair, plus an inserted corpus."""
    net = build_network(60, seed=17)
    store = ErasureStore(net, data_shares=2, total_shares=4,
                         eager_repair=False)
    rng = random.Random(9)
    corpus = {}
    for _ in range(6):
        key = random_id(rng)
        value = bytes(rng.getrandbits(8) for _ in range(37))
        store.insert(key, value)
        corpus[key] = value
    return store, corpus


class TestDegradedReads:
    def test_any_n_minus_k_crashes_decode_byte_identical(self, lazy_store):
        store, corpus = lazy_store
        net = store.network
        for key, value in corpus.items():
            holders = sorted(store.holders(key))
            assert len(holders) == 4
            for downed in itertools.combinations(holders, 2):
                for node_id in downed:
                    net.fail(node_id)
                assert store.fetch(key).value == value
                for node_id in downed:
                    net.revive(node_id)

    def test_n_minus_k_plus_one_crashes_fail(self, lazy_store):
        store, corpus = lazy_store
        net = store.network
        key, _ = next(iter(corpus.items()))
        downed = sorted(store.holders(key))[:3]
        for node_id in downed:
            net.fail(node_id)
        with pytest.raises(StorageError):
            store.fetch(key)
        for node_id in downed:
            net.revive(node_id)

    def test_any_n_minus_k_bitrot_decodes_byte_identical(self, lazy_store):
        store, corpus = lazy_store
        items = list(corpus.items())
        # one fresh key per rot pattern: rot is at-rest, not revertible
        for (key, value), pattern in zip(
            items, itertools.combinations(range(4), 2)
        ):
            holders = sorted(store.holders(key))
            for slot in pattern:
                assert store.corrupt_replica(holders[slot], key)
            assert store.fetch(key).value == value

    def test_mixed_crash_and_rot_within_budget_decodes(self, lazy_store):
        store, corpus = lazy_store
        key, value = list(corpus.items())[-1]
        holders = sorted(store.holders(key))
        store.network.fail(holders[0])
        assert store.corrupt_replica(holders[1], key)
        assert store.fetch(key).value == value
        store.network.revive(holders[0])

    def test_rot_beyond_n_minus_k_fails_closed(self, lazy_store):
        """Too many rotted shares: fetch refuses rather than serving
        corrupted bytes (replication's silent-rot failure mode)."""
        store, corpus = lazy_store
        key, _ = list(corpus.items())[-2]
        for node_id in sorted(store.holders(key))[:3]:
            assert store.corrupt_replica(node_id, key)
        with pytest.raises(StorageError):
            store.fetch(key)

    def test_health_orders_rotted_holder_last(self, lazy_store):
        store, corpus = lazy_store
        key, value = next(iter(corpus.items()))
        health = ShareHolderHealth(
            ShareGatherPolicy(hedge=1, breaker_threshold=2)
        )
        # rot the holder fetch probes first (closest to the key), so
        # the breaker sees its failures
        rotted = min(store.holders(key),
                     key=lambda h: (ring_distance(h, key), h))
        store.corrupt_replica(rotted, key)
        for _ in range(3):
            assert store.fetch(key, policy=health.policy,
                               health=health).value == value
        assert health.is_open(rotted)
        ordered = health.order(sorted(store.holders(key)))
        assert ordered[-1] == rotted


class TestAccessControlAndErrors:
    def test_outside_replica_set_rejected(self, lazy_store):
        store, corpus = lazy_store
        key = next(iter(corpus))
        outsider = next(
            node_id for node_id in store.network.alive_ids
            if node_id not in store.replica_membership(key)
        )
        with pytest.raises(ReplicationError):
            store.fetch(key, requester_id=outsider)

    def test_duplicate_insert_rejected(self, lazy_store):
        store, corpus = lazy_store
        key = next(iter(corpus))
        with pytest.raises(ReplicationError):
            store.insert(key, b"other")

    def test_non_bytes_value_rejected(self, lazy_store):
        store, _ = lazy_store
        with pytest.raises(TypeError):
            store.insert(123, "not-bytes")

    def test_missing_key_raises(self, lazy_store):
        store, _ = lazy_store
        with pytest.raises(StorageError):
            store.fetch(424242)

    def test_invalid_params_rejected(self):
        net = build_network(10, seed=3)
        with pytest.raises(ValueError):
            ErasureStore(net, data_shares=0, total_shares=3)
        with pytest.raises(ValueError):
            ErasureStore(net, data_shares=4, total_shares=3)
        with pytest.raises(ValueError):
            ErasureStore(net, 2, 4, lease_term=0)


class TestEagerRepair:
    def test_on_fail_restores_full_share_count(self):
        net = build_network(50, seed=23)
        store = ErasureStore(net, 2, 4, eager_repair=True)
        rng = random.Random(4)
        key = random_id(rng)
        value = bytes(rng.getrandbits(8) for _ in range(64))
        store.insert(key, value)
        for node_id in sorted(store.holders(key))[:2]:
            net.fail(node_id)
            store.on_fail(node_id)
        assert store.verify_invariants() == []
        assert len(store.holders(key)) == 4
        assert store.fetch(key).value == value

    def test_repaired_shares_are_byte_identical(self):
        """Re-coding is deterministic: a repaired share equals the one
        it replaces, so hash-tree roots survive repair."""
        net = build_network(50, seed=23)
        store = ErasureStore(net, 2, 4, eager_repair=True)
        key = 0xDEADBEEF
        store.insert(key, bytes(range(64)))
        originals = {
            store.share_index_of(key, h): store._stored_share(h, key).data
            for h in store.holders(key)
        }
        root_before = next(
            store._stored_share(h, key).root for h in store.holders(key)
        )
        victim = max(store.holders(key))
        net.fail(victim)
        store.on_fail(victim)
        for holder in store.holders(key):
            share = store._stored_share(holder, key)
            assert share.data == originals[share.index]
            assert share.root == root_before
