"""Tests for the GF(2^8) systematic k-of-n erasure code."""

import itertools
import random

import pytest

from repro.past.coding import (
    CodingError,
    coding_matrix,
    decode,
    encode,
    gf_inv,
    gf_mul,
    pow_gf,
    share_length,
)


def _payload(nbytes: int, seed: int = 7) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(nbytes))


class TestFieldArithmetic:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(CodingError):
            gf_inv(0)

    def test_pow_conventions(self):
        assert pow_gf(0, 0) == 1
        assert pow_gf(0, 5) == 0
        assert pow_gf(3, 1) == 3


class TestMatrix:
    def test_systematic_top_rows_are_identity(self):
        mat = coding_matrix(3, 7)
        for i in range(3):
            assert mat[i] == [1 if j == i else 0 for j in range(3)]

    def test_invalid_params_rejected(self):
        for k, n in [(0, 3), (4, 3), (1, 256), (-1, 2)]:
            with pytest.raises(CodingError):
                coding_matrix(k, n)


class TestRoundTrip:
    @pytest.mark.parametrize("k,n", [(1, 1), (1, 4), (2, 3), (2, 4),
                                     (3, 5), (4, 7), (5, 5)])
    def test_every_k_subset_decodes(self, k, n):
        data = _payload(53, seed=k * 100 + n)
        shares = encode(data, k, n)
        assert len(shares) == n
        assert all(len(s) == share_length(len(data), k) for s in shares)
        for subset in itertools.combinations(range(n), k):
            picked = {i: shares[i] for i in subset}
            assert decode(picked, k, n, len(data)) == data

    def test_systematic_prefix_is_the_data(self):
        data = _payload(60)
        shares = encode(data, 3, 5)
        assert b"".join(shares[:3]) == data

    def test_k1_shares_are_full_copies(self):
        """k=1 is the replication degenerate point."""
        data = _payload(31)
        for share in encode(data, 1, 4):
            assert share == data

    def test_extra_shares_are_ignored(self):
        data = _payload(20)
        shares = encode(data, 2, 4)
        assert decode(dict(enumerate(shares)), 2, 4, len(data)) == data

    def test_unpadded_length_restored(self):
        for nbytes in (1, 2, 3, 7, 8, 9):
            data = _payload(nbytes, seed=nbytes)
            shares = encode(data, 3, 4)
            assert decode({0: shares[0], 2: shares[2], 3: shares[3]},
                          3, 4, nbytes) == data

    def test_empty_object(self):
        shares = encode(b"", 2, 4)
        assert shares == [b""] * 4
        assert decode({}, 2, 4, 0) == b""

    def test_deterministic(self):
        data = _payload(40)
        assert encode(data, 2, 4) == encode(data, 2, 4)


class TestDecodeErrors:
    def test_too_few_shares(self):
        shares = encode(_payload(16), 3, 5)
        with pytest.raises(CodingError):
            decode({0: shares[0], 1: shares[1]}, 3, 5, 16)

    def test_out_of_range_indices_do_not_count(self):
        shares = encode(_payload(16), 2, 4)
        with pytest.raises(CodingError):
            decode({0: shares[0], 9: shares[0]}, 2, 4, 16)

    def test_wrong_share_length(self):
        shares = encode(_payload(16), 2, 4)
        with pytest.raises(CodingError):
            decode({0: shares[0][:-1], 1: shares[1]}, 2, 4, 16)


class TestShareLength:
    def test_ceiling_division(self):
        assert share_length(10, 3) == 4
        assert share_length(9, 3) == 3
        assert share_length(1, 4) == 1

    def test_empty(self):
        assert share_length(0, 3) == 0
