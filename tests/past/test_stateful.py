"""Hypothesis stateful testing of the overlay + replication invariants.

A random interleaving of joins, failures, inserts and deletes must
never violate:

* the alive-id list matches per-node liveness flags;
* every stored object's live holders are exactly the k closest alive
  nodes (after the corresponding repair hook ran);
* routing from any alive node reaches the numerically closest node;
* objects with at least one surviving holder remain fetchable with
  their original value; deletion requires the right password.

This is the strongest correctness net over the substrate: hypothesis
explores operation orders no hand-written scenario covers.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.crypto.hashing import hash_password
from repro.past.replication import ReplicatedStore
from repro.pastry.network import PastryNetwork
from repro.util.ids import random_id

MIN_ALIVE = 12  # keep the overlay routable (> leaf-set half + margin)


class ReplicationMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rng = random.Random(0xC0FFEE)
        self.expected: dict[int, bytes] = {}  # key -> value for live objects
        self.passwords: dict[int, bytes] = {}

    @initialize()
    def setup(self):
        ids = {random_id(self.rng) for _ in range(30)}
        self.network = PastryNetwork.build(ids)
        self.store = ReplicatedStore(self.network, replication_factor=3)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    @rule(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def insert_object(self, seed):
        key = random_id(random.Random(seed))
        if self.store.exists(key) or key in self.expected:
            return
        value = f"value-{seed}".encode()
        pw = f"pw-{seed}".encode()
        self.store.insert(key, value, delete_proof_hash=hash_password(pw))
        self.expected[key] = value
        self.passwords[key] = pw

    @rule(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def join_node(self, seed):
        new_id = random_id(random.Random(seed ^ 0xABCDEF))
        if new_id in self.network.nodes:
            return
        self.network.join(new_id)
        self.store.on_join(new_id)

    @precondition(lambda self: self.network.size > MIN_ALIVE)
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def fail_node(self, pick):
        victim = self.network.alive_ids[pick % self.network.size]
        holders_lost = {
            key for key in self.expected
            if set(self.store.holders(key))
            & {h for h in self.store.holders(key) if self.network.is_alive(h)}
            == {victim}
        }
        self.network.fail(victim)
        self.store.on_fail(victim)
        # Objects whose last live holder was the victim are gone.
        for key in list(self.expected):
            if not self.store.exists(key):
                del self.expected[key]
                self.passwords.pop(key, None)
        del holders_lost

    @precondition(lambda self: bool(self.expected))
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def delete_object(self, pick):
        keys = sorted(self.expected)
        key = keys[pick % len(keys)]
        assert self.store.delete(key, self.passwords[key])
        del self.expected[key]
        del self.passwords[key]

    @precondition(lambda self: bool(self.expected))
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def delete_with_wrong_password_fails(self, pick):
        keys = sorted(self.expected)
        key = keys[pick % len(keys)]
        assert not self.store.delete(key, b"not-the-password")
        assert self.store.exists(key)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def alive_list_consistent(self):
        alive = [nid for nid, node in self.network.nodes.items() if node.alive]
        assert sorted(alive) == self.network.alive_ids

    @invariant()
    def replica_sets_are_k_closest(self):
        problems = self.store.verify_invariants()
        assert problems == [], problems

    @invariant()
    def objects_fetchable_with_original_value(self):
        for key, value in self.expected.items():
            assert self.store.fetch(key).value == value

    @invariant()
    def routing_reaches_closest(self):
        if self.network.size == 0:
            return
        src = self.network.alive_ids[0]
        key = random_id(random.Random(self.network.size))
        result = self.network.route(src, key)
        assert result.success
        assert result.destination == self.network.closest_alive(key)


ReplicationMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestReplicationStateful = ReplicationMachine.TestCase
