"""Tests for leases and the background verify/repair crawler."""

import random

import pytest

from repro.past.coding import share_length
from repro.past.crawler import RepairCrawler
from repro.past.erasure import ErasureStore
from repro.past.storage import StorageError
from repro.util.ids import random_id
from tests.conftest import build_network

K, N, LEASE = 2, 4, 6


def _populated(num_objects=5, object_bytes=40, seed=21, **kwargs):
    net = build_network(60, seed=seed)
    store = ErasureStore(net, K, N, lease_term=LEASE,
                         eager_repair=False, **kwargs)
    rng = random.Random(seed)
    corpus = {}
    for _ in range(num_objects):
        key = random_id(rng)
        value = bytes(rng.getrandbits(8) for _ in range(object_bytes))
        store.insert(key, value)
        corpus[key] = value
    return store, corpus


def _snapshot(store):
    """Every (key, holder, stored share) triple, deterministically."""
    return [
        (key, holder, store._stored_share(holder, key))
        for key in store.all_keys()
        for holder in sorted(store.holders(key))
    ]


class TestHealthyPassIsNoOp:
    def test_byte_identical_and_counts_zero(self):
        store, _ = _populated()
        crawler = RepairCrawler(store, seed=1)
        before = _snapshot(store)
        report = crawler.run_pass()
        assert _snapshot(store) == before
        assert report.keys_scanned == len(store.all_keys())
        assert report.shares_verified == len(store.all_keys()) * N
        assert report.corrupt_found == 0
        assert report.leases_renewed == 0
        assert report.shares_rebuilt == 0
        assert report.bytes_moved == 0
        assert not report.budget_exhausted

    def test_repeated_passes_stay_idempotent(self):
        store, _ = _populated()
        crawler = RepairCrawler(store, seed=1)
        crawler.run_pass()
        before = _snapshot(store)
        for _ in range(3):
            crawler.run_pass()
        assert _snapshot(store) == before


class TestLeases:
    def test_unrenewed_leases_expire_and_shares_gc(self):
        store, corpus = _populated()
        for _ in range(LEASE + 1):
            store.advance_epoch()
        key = next(iter(corpus))
        assert store.holders(key) == set()
        with pytest.raises(StorageError):
            store.fetch(key)

    def test_crawler_renews_before_expiry(self):
        store, corpus = _populated()
        crawler = RepairCrawler(store, seed=1, renew_before=2)
        renewed = 0
        for _ in range(3 * LEASE):
            store.advance_epoch()
            renewed += crawler.run_pass().leases_renewed
        assert renewed > 0
        for key, value in corpus.items():
            assert store.fetch(key).value == value
        assert store.verify_invariants() == []

    def test_skewed_clock_drops_early_and_crawler_heals(self):
        store, corpus = _populated()
        crawler = RepairCrawler(store, seed=1,
                                budget_bytes_per_epoch=None)
        key, value = next(iter(corpus.items()))
        skewed = min(store.holders(key))
        store.set_clock_skew(skewed, LEASE + 2)
        store.advance_epoch()
        # the skewed holder GC'd its share a whole term early...
        assert skewed not in store.holders(key)
        assert store.fetch(key).value == value
        # ...and one crawler pass re-codes it back
        crawler.run_pass()
        assert len(store.holders(key)) == N
        assert store.verify_invariants() == []


class TestCrashConvergence:
    def test_unbudgeted_pass_restores_invariants(self):
        store, corpus = _populated()
        crawler = RepairCrawler(store, seed=1,
                                budget_bytes_per_epoch=None)
        net = store.network
        rng = random.Random(3)
        for node_id in sorted(rng.sample(sorted(net.alive_ids), 8)):
            net.fail(node_id)
            store.on_fail(node_id)
        assert store.under_replicated()
        reports = crawler.run_until_stable()
        assert store.verify_invariants() == []
        assert not reports[-1].shares_rebuilt
        for key, value in corpus.items():
            assert store.fetch(key).value == value

    def test_two_passes_after_crash_converge(self):
        """Crawler restarts mid-damage must converge, not oscillate:
        the pass after the one that finishes repairing is a no-op."""
        store, _ = _populated()
        crawler = RepairCrawler(store, seed=1,
                                budget_bytes_per_epoch=None)
        net = store.network
        victim = max(h for key in store.all_keys()
                     for h in store.holders(key))
        net.fail(victim)
        store.on_fail(victim)
        first = crawler.run_pass()
        after_first = _snapshot(store)
        second = crawler.run_pass()
        assert first.shares_rebuilt > 0
        assert second.shares_rebuilt == 0
        assert second.corrupt_found == 0
        assert _snapshot(store) == after_first
        assert store.verify_invariants() == []


class TestBudget:
    def test_budgeted_recovery_is_bounded_per_epoch(self):
        store, corpus = _populated(num_objects=8, object_bytes=64)
        budget = 256
        crawler = RepairCrawler(store, seed=1,
                                budget_bytes_per_epoch=budget)
        net = store.network
        rng = random.Random(5)
        for node_id in sorted(rng.sample(sorted(net.alive_ids), 10)):
            net.fail(node_id)
            store.on_fail(node_id)
        frag = share_length(64, K)
        # one repair action reads k shares and writes at most n
        overshoot = (K + N) * frag
        reports = crawler.run_until_stable(max_passes=64)
        assert all(r.bytes_moved <= budget + overshoot for r in reports)
        assert any(r.budget_exhausted for r in reports[:-1])
        assert store.verify_invariants() == []
        for key, value in corpus.items():
            assert store.fetch(key).value == value

    def test_bitrot_is_found_and_scrubbed(self):
        store, corpus = _populated()
        crawler = RepairCrawler(store, seed=1,
                                budget_bytes_per_epoch=None)
        key, value = next(iter(corpus.items()))
        rotted = sorted(store.holders(key))[:2]
        for node_id in rotted:
            assert store.corrupt_replica(node_id, key)
        report = crawler.run_pass()
        assert report.corrupt_found == 2
        assert report.shares_rebuilt >= 2
        assert store.verify_invariants() == []
        assert store.fetch(key).value == value

    def test_invalid_params_rejected(self):
        store, _ = _populated()
        with pytest.raises(ValueError):
            RepairCrawler(store, budget_bytes_per_epoch=0)
        with pytest.raises(ValueError):
            RepairCrawler(store, renew_before=-1)
