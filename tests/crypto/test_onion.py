"""Tests for layered onion construction/peeling (§2, §4, §5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.onion import (
    OnionLayer,
    build_onion,
    build_reply_onion,
    make_fake_onion,
    peel_layer,
)
from repro.crypto.symmetric import CipherError, SymmetricKey


def _layers(n: int, with_hints: bool = False) -> list[OnionLayer]:
    out = []
    for i in range(n):
        key = SymmetricKey(bytes([i + 1]) * 16)
        hint = f"10.0.0.{i + 1}" if with_hints else ""
        out.append(OnionLayer(hop_id=1000 + i, key=key, ip_hint=hint))
    return out


class TestForwardOnion:
    def test_three_hop_structure(self):
        """Mirrors Fig. 1: {h2, {h3, {D, m}K3}K2}K1."""
        layers = _layers(3)
        blob = build_onion(layers, destination_id=77, payload=b"m")

        p1 = peel_layer(layers[0].key, blob)
        assert not p1.is_exit and p1.next_id == layers[1].hop_id

        p2 = peel_layer(layers[1].key, p1.inner)
        assert not p2.is_exit and p2.next_id == layers[2].hop_id

        p3 = peel_layer(layers[2].key, p2.inner)
        assert p3.is_exit and p3.next_id == 77 and p3.inner == b"m"

    def test_single_hop(self):
        layers = _layers(1)
        p = peel_layer(layers[0].key, build_onion(layers, 5, b"x"))
        assert p.is_exit and p.next_id == 5 and p.inner == b"x"

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            build_onion([], 5, b"x")

    def test_hints_ride_in_layers(self):
        layers = _layers(3, with_hints=True)
        blob = build_onion(layers, 77, b"m")
        p1 = peel_layer(layers[0].key, blob)
        # Layer 1 reveals the *next* hop's hint.
        assert p1.ip_hint == layers[1].ip_hint
        p2 = peel_layer(layers[1].key, p1.inner)
        assert p2.ip_hint == layers[2].ip_hint

    def test_wrong_key_cannot_peel(self):
        layers = _layers(2)
        blob = build_onion(layers, 1, b"x")
        with pytest.raises(CipherError):
            peel_layer(layers[1].key, blob)

    def test_intermediate_hop_cannot_see_payload(self):
        layers = _layers(3)
        blob = build_onion(layers, 77, b"super-secret")
        p1 = peel_layer(layers[0].key, blob)
        assert b"super-secret" not in p1.inner

    @given(
        n=st.integers(min_value=1, max_value=6),
        payload=st.binary(max_size=100),
        dest=st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    @settings(max_examples=50)
    def test_full_peel_recovers_payload(self, n, payload, dest):
        layers = _layers(n)
        blob = build_onion(layers, dest, payload)
        for layer in layers[:-1]:
            p = peel_layer(layer.key, blob)
            assert not p.is_exit
            blob = p.inner
        final = peel_layer(layers[-1].key, blob)
        assert final.is_exit and final.next_id == dest and final.inner == payload


class TestReplyOnion:
    def test_structure_all_relay(self):
        """T_r = {hid1,{hid2,{hid3,{bid, fakeonion}K3}K2}K1}: every
        layer, including the last, peels to a RELAY — the tail cannot
        recognise itself (§4)."""
        layers = _layers(3)
        fake = make_fake_onion(random.Random(0))
        first, blob = build_reply_onion(layers, bid=4242, fake_onion=fake)
        assert first == layers[0].hop_id

        p1 = peel_layer(layers[0].key, blob)
        assert not p1.is_exit and p1.next_id == layers[1].hop_id
        p2 = peel_layer(layers[1].key, p1.inner)
        assert not p2.is_exit and p2.next_id == layers[2].hop_id
        p3 = peel_layer(layers[2].key, p2.inner)
        assert not p3.is_exit  # indistinguishable from one more hop
        assert p3.next_id == 4242
        assert p3.inner == fake

    def test_fake_onion_required(self):
        with pytest.raises(ValueError):
            build_reply_onion(_layers(2), bid=1, fake_onion=b"")

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            build_reply_onion([], bid=1, fake_onion=b"x")

    def test_fake_onion_unpeelable(self):
        """Treating the fakeonion as a real layer fails exactly like a
        layer sealed under an unknown key."""
        layers = _layers(1)
        fake = make_fake_onion(random.Random(0))
        _, blob = build_reply_onion(layers, bid=1, fake_onion=fake)
        p = peel_layer(layers[0].key, blob)
        with pytest.raises(CipherError):
            peel_layer(SymmetricKey(b"z" * 16), p.inner)


class TestFakeOnion:
    def test_sized_like_layers(self):
        small = make_fake_onion(random.Random(0), approx_layers=1)
        big = make_fake_onion(random.Random(0), approx_layers=4)
        assert len(big) > len(small)

    def test_random_content(self):
        a = make_fake_onion(random.Random(1))
        b = make_fake_onion(random.Random(2))
        assert a != b

    def test_deterministic_per_seed(self):
        assert make_fake_onion(random.Random(3)) == make_fake_onion(random.Random(3))


class TestMalformedLayers:
    def test_garbage_plaintext_rejected(self):
        key = SymmetricKey(b"k" * 16)
        sealed = key.seal(b"not a valid layer")
        with pytest.raises(CipherError):
            peel_layer(key, sealed)

    def test_unknown_tag_rejected(self):
        from repro.util.serialize import pack_fields, pack_int

        key = SymmetricKey(b"k" * 16)
        bogus = key.seal(pack_fields(b"X", pack_int(1), b"", b"inner"))
        with pytest.raises(CipherError):
            peel_layer(key, bogus)
