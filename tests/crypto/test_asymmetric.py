"""Tests for the RSA key pairs (bootstrap PKI, temporary K_I)."""

import random

import pytest

from repro.crypto.asymmetric import RsaError, RsaKeyPair, RsaPublicKey, _is_probable_prime


@pytest.fixture(scope="module")
def keypair() -> RsaKeyPair:
    return RsaKeyPair.generate(random.Random(42), bits=512)


class TestPrimality:
    def test_small_primes(self):
        rng = random.Random(0)
        for p in (2, 3, 5, 7, 101, 7919):
            assert _is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = random.Random(0)
        for c in (0, 1, 4, 9, 100, 7917, 561, 1105):  # incl. Carmichael
            assert not _is_probable_prime(c, rng)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 511 <= keypair.public.n.bit_length() <= 512

    def test_deterministic_per_seed(self):
        a = RsaKeyPair.generate(random.Random(7), bits=384)
        b = RsaKeyPair.generate(random.Random(7), bits=384)
        assert a.public == b.public

    def test_too_small_rejected(self):
        with pytest.raises(RsaError):
            RsaKeyPair.generate(random.Random(0), bits=128)


class TestEncryptDecrypt:
    def test_roundtrip(self, keypair):
        rng = random.Random(1)
        for size in (0, 1, 15, 16, 100, 2000):
            msg = bytes(range(256)) * (size // 256) + bytes(range(size % 256))
            assert keypair.decrypt(keypair.public.encrypt(msg, rng)) == msg

    def test_randomized_encryption(self, keypair):
        rng = random.Random(1)
        c1 = keypair.public.encrypt(b"m", rng)
        c2 = keypair.public.encrypt(b"m", rng)
        assert c1 != c2

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(random.Random(9), bits=512)
        ct = keypair.public.encrypt(b"secret", random.Random(2))
        with pytest.raises(RsaError):
            other.decrypt(ct)

    def test_tampered_ciphertext_rejected(self, keypair):
        ct = bytearray(keypair.public.encrypt(b"secret", random.Random(2)))
        ct[-1] ^= 1
        with pytest.raises(RsaError):
            keypair.decrypt(bytes(ct))

    def test_short_ciphertext_rejected(self, keypair):
        with pytest.raises(RsaError):
            keypair.decrypt(b"tiny")


class TestSignVerify:
    def test_roundtrip(self, keypair):
        sig = keypair.sign(b"message")
        assert keypair.public.verify(b"message", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.sign(b"message")
        assert not keypair.public.verify(b"other", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"message"))
        sig[0] ^= 1
        assert not keypair.public.verify(b"message", bytes(sig))

    def test_wrong_length_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"message", b"\x00" * 10)


class TestPublicKeyEncoding:
    def test_to_bytes_roundtrip(self, keypair):
        blob = keypair.public.to_bytes()
        n = int.from_bytes(blob[:-4], "big")
        e = int.from_bytes(blob[-4:], "big")
        assert RsaPublicKey(n, e) == keypair.public

    def test_invalid_params_rejected(self):
        with pytest.raises(RsaError):
            RsaPublicKey(0)
        with pytest.raises(RsaError):
            RsaPublicKey(100, 1)

    def test_hashable(self, keypair):
        assert len({keypair.public, keypair.public}) == 1
