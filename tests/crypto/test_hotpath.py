"""Regression tests for the optimised crypto hot path.

The seal/open fast path (pre-primed HMAC pads, primed keystream
prefix, whole-buffer XOR, memoryview slicing) must stay byte-identical
to the reference construction at every size class the block-oriented
keystream distinguishes, survive the 8-byte nonce-counter boundary,
and round-trip through pickling (workers carry keys across process
boundaries).
"""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import (
    _NONCE_MODULUS,
    CipherError,
    SymmetricKey,
    _keystream,
)

KEY = b"k" * 32

#: the size classes the 32-byte-block keystream distinguishes: empty,
#: sub-block, block-1, exact block, block+1, and many blocks
SIZE_CLASSES = (0, 1, 31, 32, 33, 4096)


class TestSizeClasses:
    @pytest.mark.parametrize("size", SIZE_CLASSES)
    def test_roundtrip(self, size):
        key = SymmetricKey(KEY)
        plaintext = bytes(range(256)) * (size // 256 + 1)
        plaintext = plaintext[:size]
        opened = SymmetricKey(KEY).open(key.seal(plaintext))
        assert opened == plaintext
        assert isinstance(opened, bytes)

    @pytest.mark.parametrize("size", SIZE_CLASSES)
    def test_stream_matches_reference_keystream(self, size):
        """The vectorised XOR must equal byte-by-byte XOR with the
        (unchanged) counter-mode keystream definition."""
        key = SymmetricKey(KEY)
        nonce = (5).to_bytes(8, "big")
        plaintext = b"\xa5" * size
        sealed = key.seal(plaintext, nonce=nonce)
        ct = sealed[8:-32]
        stream = _keystream(key._enc_key, nonce, size)
        assert ct == bytes(p ^ s for p, s in zip(plaintext, stream))

    @given(plaintext=st.binary(max_size=2048))
    def test_roundtrip_fuzz(self, plaintext):
        key = SymmetricKey(KEY)
        assert SymmetricKey(KEY).open(key.seal(plaintext)) == plaintext


class TestNonceCounterBoundary:
    def test_seal_past_the_8_byte_boundary(self):
        """The counter must wrap modulo 2**64 instead of raising
        OverflowError when encoding the nonce (regression: the counter
        used to grow unbounded and explode at 2**64)."""
        key = SymmetricKey(KEY)
        key._nonce_counter = _NONCE_MODULUS - 1
        sealed_wrap = key.seal(b"at the edge")  # counter -> 0
        sealed_next = key.seal(b"after the edge")  # counter -> 1
        assert sealed_wrap[:8] == (0).to_bytes(8, "big")
        assert sealed_next[:8] == (1).to_bytes(8, "big")
        opener = SymmetricKey(KEY)
        assert opener.open(sealed_wrap) == b"at the edge"
        assert opener.open(sealed_next) == b"after the edge"

    def test_wrap_reuses_the_counter_zero_stream(self):
        """Documented consequence of wrapping: the nonce sequence
        repeats, so seal #2**64+1 equals seal #1 for equal plaintext."""
        fresh = SymmetricKey(KEY)
        first = fresh.seal(b"m")
        wrapped = SymmetricKey(KEY)
        wrapped._nonce_counter = _NONCE_MODULUS
        assert wrapped.seal(b"m") == first


class TestPickling:
    def test_key_round_trips_with_counter(self):
        key = SymmetricKey(KEY)
        key.seal(b"one")
        key.seal(b"two")
        clone = pickle.loads(pickle.dumps(key))
        assert clone == key
        assert clone._nonce_counter == key._nonce_counter
        # The clone continues the nonce sequence, not restarts it.
        assert clone.seal(b"x")[:8] == (3).to_bytes(8, "big")
        assert SymmetricKey(KEY).open(clone.seal(b"payload")) == b"payload"

    def test_unpickled_key_rejects_tampering(self):
        clone = pickle.loads(pickle.dumps(SymmetricKey(KEY)))
        sealed = bytearray(clone.seal(b"payload"))
        sealed[10] ^= 0x01
        with pytest.raises(CipherError):
            clone.open(bytes(sealed))
