"""Pinned test vectors: the wire formats must never drift silently.

A deployed anonymity network cannot change its cryptographic framing
without a coordinated upgrade, so these tests pin the exact bytes of
each construction against known inputs.  If any of them fails after a
refactor, the change is wire-breaking and must be intentional.
"""

import random

from repro.crypto.hashing import derive_hopid, hash_password, sha1_id
from repro.crypto.onion import OnionLayer, build_onion
from repro.crypto.symmetric import SymmetricKey
from repro.util.serialize import pack_fields, pack_int


class TestHashVectors:
    def test_sha1_id_vector(self):
        # SHA-1("abc" || SEP) >> 32, fixed forever by construction.
        assert sha1_id(b"abc") == 0xBA08D07FC5B180AD9FBF13E7097C7795

    def test_hopid_vector(self):
        assert derive_hopid(b"10.0.0.1", b"hkey", 7) == (
            0x011D3037B5A2378CC3CE3881F62749FB
        )

    def test_password_hash_vector(self):
        assert hash_password(b"hunter2").hex() == (
            "2592b5b5d10ef3a263326daf791f1f671c2cdc7f61911a28b5ecb989d45286c2"
        )


class TestCipherVectors:
    def test_seal_with_fixed_nonce(self):
        key = SymmetricKey(b"0123456789abcdef")
        sealed = key.seal(b"attack at dawn", nonce=b"\x00" * 8)
        assert sealed.hex() == (
            "0000000000000000"  # nonce
            + sealed[8:-32].hex()  # ciphertext (checked via roundtrip)
            + sealed[-32:].hex()
        )
        assert key.open(sealed) == b"attack at dawn"
        # the ciphertext bytes themselves are pinned:
        assert sealed[8:-32].hex() == "8d640def68147a3e7dd2c5d316ee"

    def test_layer_framing_vector(self):
        """One onion layer's plaintext framing, byte for byte."""
        frame = pack_fields(b"R", pack_int(5), b"", b"inner")
        assert frame.hex() == (
            "0000000152"  # len=1, "R"
            "0000001000000000000000000000000000000005"  # len=16, id 5
            "00000000"  # empty hint
            "00000005696e6e6572"  # len=5, "inner"
        )


class TestOnionDeterminism:
    def test_onion_stable_given_nonces(self):
        """Two onion builds from identical key states produce identical
        bytes (nonces are per-key counters)."""
        def build():
            layers = [
                OnionLayer(100 + i, SymmetricKey(bytes([i + 1]) * 16))
                for i in range(3)
            ]
            return build_onion(layers, 7, b"m")

        assert build() == build()

    def test_onion_size_formula(self):
        """Size grows by exactly overhead+framing per layer — the
        property traffic-analysis padding must account for."""
        payload = b"x" * 100
        sizes = []
        for depth in (1, 2, 3, 4):
            layers = [
                OnionLayer(i, SymmetricKey(bytes([i + 1]) * 16))
                for i in range(depth)
            ]
            sizes.append(len(build_onion(layers, 7, payload)))
        deltas = {b - a for a, b in zip(sizes, sizes[1:])}
        assert len(deltas) == 1  # constant per-layer growth
        per_layer = deltas.pop()
        # seal overhead (40) + 4 length prefixes (16) + tag (1) + id (16) + hint (0)
        assert per_layer == SymmetricKey.overhead() + 16 + 1 + 16


class TestRsaDeterminism:
    def test_keygen_vector(self):
        from repro.crypto.asymmetric import RsaKeyPair

        pair = RsaKeyPair.generate(random.Random(2024), bits=384)
        # pinned: deterministic Miller-Rabin keygen from a seeded rng
        assert pair.public.e == 65537
        assert pair.public.n.bit_length() in (383, 384)
        assert pair.decrypt(
            pair.public.encrypt(b"pin", random.Random(1))
        ) == b"pin"
