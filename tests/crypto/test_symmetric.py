"""Tests for the authenticated stream cipher."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import CipherError, SymmetricKey, _hmac_sha256


class TestHmac:
    """Our RFC 2104 implementation must match the stdlib exactly."""

    @given(key=st.binary(min_size=1, max_size=100), msg=st.binary(max_size=200))
    def test_matches_stdlib(self, key, msg):
        ours = _hmac_sha256(key, msg)
        theirs = stdlib_hmac.new(key, msg, hashlib.sha256).digest()
        assert ours == theirs

    def test_long_key_hashed_first(self):
        key = b"k" * 100  # longer than the 64-byte block
        assert _hmac_sha256(key, b"m") == stdlib_hmac.new(
            key, b"m", hashlib.sha256
        ).digest()


class TestSealOpen:
    @given(plaintext=st.binary(max_size=500))
    def test_roundtrip(self, plaintext):
        key = SymmetricKey(b"0123456789abcdef")
        assert key.open(key.seal(plaintext)) == plaintext

    def test_distinct_key_instances_interoperate(self):
        a = SymmetricKey(b"0123456789abcdef")
        b = SymmetricKey(b"0123456789abcdef")
        assert b.open(a.seal(b"msg")) == b"msg"

    def test_wrong_key_rejected(self):
        a = SymmetricKey(b"0123456789abcdef")
        b = SymmetricKey(b"fedcba9876543210")
        with pytest.raises(CipherError):
            b.open(a.seal(b"msg"))

    def test_tampered_ciphertext_rejected(self):
        key = SymmetricKey(b"0123456789abcdef")
        sealed = bytearray(key.seal(b"payload"))
        sealed[10] ^= 0x01
        with pytest.raises(CipherError):
            key.open(bytes(sealed))

    def test_tampered_tag_rejected(self):
        key = SymmetricKey(b"0123456789abcdef")
        sealed = bytearray(key.seal(b"payload"))
        sealed[-1] ^= 0x01
        with pytest.raises(CipherError):
            key.open(bytes(sealed))

    def test_truncated_rejected(self):
        key = SymmetricKey(b"0123456789abcdef")
        with pytest.raises(CipherError):
            key.open(b"short")

    def test_nonces_differ_between_seals(self):
        key = SymmetricKey(b"0123456789abcdef")
        s1 = key.seal(b"same")
        s2 = key.seal(b"same")
        assert s1 != s2  # deterministic counter nonce advances

    def test_explicit_nonce_reproducible(self):
        key = SymmetricKey(b"0123456789abcdef")
        n = b"\x00" * 8
        assert key.seal(b"m", nonce=n) == key.seal(b"m", nonce=n)

    def test_bad_nonce_length_rejected(self):
        key = SymmetricKey(b"0123456789abcdef")
        with pytest.raises(ValueError):
            key.seal(b"m", nonce=b"short")

    def test_overhead_constant(self):
        key = SymmetricKey(b"0123456789abcdef")
        for size in (0, 1, 100, 1000):
            assert len(key.seal(b"x" * size)) == size + SymmetricKey.overhead()

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SymmetricKey(b"short")

    def test_equality_and_hash(self):
        a = SymmetricKey(b"0123456789abcdef")
        b = SymmetricKey(b"0123456789abcdef")
        assert a == b and hash(a) == hash(b)
        assert a != SymmetricKey(b"fedcba9876543210")

    def test_empty_plaintext(self):
        key = SymmetricKey(b"0123456789abcdef")
        assert key.open(key.seal(b"")) == b""

    @given(
        plaintext=st.binary(min_size=1, max_size=64),
        flip=st.integers(min_value=0, max_value=7),
    )
    def test_any_single_bit_flip_detected(self, plaintext, flip):
        key = SymmetricKey(b"0123456789abcdef")
        sealed = bytearray(key.seal(plaintext, nonce=b"\x01" * 8))
        byte = flip % len(sealed)
        sealed[byte] ^= 1 << (flip % 8)
        with pytest.raises(CipherError):
            key.open(bytes(sealed))
