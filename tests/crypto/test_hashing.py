"""Tests for hashing: id derivation, hopids, password proofs."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    derive_hopid,
    hash_password,
    random_key,
    random_password,
    sha1_id,
    sha256_bytes,
    verify_password,
)
from repro.util.ids import ID_SPACE


class TestSha1Id:
    def test_in_id_space(self):
        assert 0 <= sha1_id(b"x") < ID_SPACE

    def test_deterministic(self):
        assert sha1_id(b"a", b"b") == sha1_id(b"a", b"b")

    def test_separator_prevents_concatenation_ambiguity(self):
        assert sha1_id(b"ab", b"c") != sha1_id(b"a", b"bc")

    def test_distinct_inputs_distinct_outputs(self):
        outs = {sha1_id(str(i).encode()) for i in range(1000)}
        assert len(outs) == 1000


class TestSha256Bytes:
    def test_32_bytes(self):
        assert len(sha256_bytes(b"x")) == 32

    def test_separated(self):
        assert sha256_bytes(b"ab", b"c") != sha256_bytes(b"a", b"bc")


class TestDeriveHopid:
    def test_deterministic(self):
        assert derive_hopid(b"node", b"key", 5) == derive_hopid(b"node", b"key", 5)

    def test_timestamp_varies_output(self):
        assert derive_hopid(b"node", b"key", 1) != derive_hopid(b"node", b"key", 2)

    def test_hkey_varies_output(self):
        """Without hkey an attacker could link hopids by recomputation
        over all known node identifiers (§3.2)."""
        assert derive_hopid(b"node", b"k1", 1) != derive_hopid(b"node", b"k2", 1)

    def test_node_identifier_varies_output(self):
        assert derive_hopid(b"n1", b"key", 1) != derive_hopid(b"n2", b"key", 1)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            derive_hopid(b"", b"key", 1)
        with pytest.raises(ValueError):
            derive_hopid(b"node", b"", 1)
        with pytest.raises(ValueError):
            derive_hopid(b"node", b"key", -1)

    def test_no_collisions_across_nodes(self):
        """The generation mechanism exists to avoid collisions (§3.2)."""
        hopids = {
            derive_hopid(f"node{n}".encode(), b"secret", t)
            for n in range(50)
            for t in range(20)
        }
        assert len(hopids) == 1000


class TestPasswords:
    @given(pw=st.binary(min_size=1, max_size=64))
    def test_verify_accepts_correct(self, pw):
        assert verify_password(pw, hash_password(pw))

    def test_verify_rejects_wrong(self):
        assert not verify_password(b"wrong", hash_password(b"right"))

    def test_verify_rejects_empty(self):
        assert not verify_password(b"", hash_password(b"right"))

    def test_hash_rejects_empty(self):
        with pytest.raises(ValueError):
            hash_password(b"")

    def test_hash_is_not_identity(self):
        """Only H(PW) is stored so holders cannot learn PW (§3.4)."""
        assert hash_password(b"secret") != b"secret"

    def test_verify_fails_closed_on_malformed_stored_hash(self):
        """A bit-rotted or mistyped stored hash denies, never raises."""
        assert not verify_password(b"pw", None)  # type: ignore[arg-type]
        assert not verify_password(b"pw", "text")  # type: ignore[arg-type]
        assert not verify_password(b"pw", hash_password(b"pw")[:-3])

    def test_verify_accepts_bytearray_hash(self):
        assert verify_password(b"pw", bytearray(hash_password(b"pw")))


class TestRandomMaterial:
    def test_key_length(self):
        assert len(random_key(random.Random(0))) == 16
        assert len(random_key(random.Random(0), nbytes=32)) == 32

    def test_password_reproducible_per_seed(self):
        assert random_password(random.Random(1)) == random_password(random.Random(1))

    def test_key_and_password_draw_from_stream(self):
        rng = random.Random(1)
        assert random_key(rng) != random_key(rng)
