"""Tests for the tunneling engine: traversal, fail-over, hints, replies."""

import random

import pytest

from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.core.node import PendingReply
from repro.crypto.asymmetric import RsaKeyPair


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=12)
    return node


def _destination(system, label="dest"):
    return system.random_node_id(label)


class TestForwardTraversal:
    def test_delivers_payload_to_destination_root(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3)
        dest_key = 123456789
        delivered = []
        trace = system.forwarder.send(
            alice, tunnel, dest_key, b"payload",
            deliver=lambda nid, p: delivered.append((nid, p)),
        )
        assert trace.success
        assert delivered == [(system.network.closest_alive(dest_key), b"payload")]
        assert trace.overlay_hops == 3

    def test_hop_nodes_are_replica_roots(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        for rec, tha in zip(trace.records, tunnel.hops):
            assert rec.hop_id == tha.hop_id
            assert rec.hop_node == system.network.closest_alive(tha.hop_id)
            assert not rec.promoted

    def test_underlying_path_continuous(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3)
        trace = system.send(alice, tunnel, 42, b"x")
        path = trace.full_underlying_path()
        assert path[0] == alice.node_id
        assert path[-1] == system.network.closest_alive(42)
        # consecutive entries differ (no zero-length hops kept)
        assert all(a != b for a, b in zip(path, path[1:]))

    def test_single_hop_tunnel(self, system, alice):
        tunnel = system.form_tunnel(alice, length=1)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success and trace.overlay_hops == 1


class TestFaultTolerance:
    def test_survives_hop_node_failure(self, system, alice):
        """The headline claim: tunnels keep working when tunnel hop
        nodes fail, because routing lands on the promoted candidate."""
        tunnel = system.form_tunnel(alice, length=3)
        for tha in tunnel.hops:
            system.fail_node(system.network.closest_alive(tha.hop_id))
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        assert all(rec.promoted for rec in trace.records)

    def test_survives_repeated_failures_with_repair(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3)
        for _round in range(3):
            for tha in tunnel.hops:
                system.fail_node(system.network.closest_alive(tha.hop_id))
            trace = system.send(alice, tunnel, 42, b"x")
            assert trace.success, trace.failure_reason

    def test_breaks_when_all_replicas_fail_simultaneously(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3)
        victim_hop = tunnel.hops[1]
        holders = list(system.store.holders(victim_hop.hop_id))
        system.fail_nodes(holders, repair_after=False)
        trace = system.send(alice, tunnel, 42, b"x")
        assert not trace.success
        assert "no THA replica" in trace.failure_reason

    def test_current_tunneling_breaks_where_tap_survives(self, system, alice):
        """Head-to-head on the same failure: the fixed-node baseline
        dies, TAP lives."""
        from repro.baselines.fixed_tunnel import form_fixed_tunnel

        rng = random.Random(1)
        tunnel = system.form_tunnel(alice, length=3)
        roots = [system.network.closest_alive(t.hop_id) for t in tunnel.hops]
        fixed = form_fixed_tunnel(roots, 3, rng)

        system.fail_node(roots[1])

        assert not fixed.functions(system.network.is_alive)
        ok, _, payload = fixed.send(42, b"x", system.network.is_alive)
        assert not ok
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success


class TestIpHints:
    def test_hints_used_when_fresh(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        assert all(rec.via_hint for rec in trace.records)
        # each hinted hop is exactly one physical link
        for rec in trace.records:
            assert len(rec.underlying_path) == 2

    def test_hint_shorter_than_basic(self, system, alice):
        hinted = system.form_tunnel(alice, length=3, use_hints=True)
        t1 = system.send(alice, hinted, 42, b"x")
        basic = system.form_tunnel(alice, length=3, use_hints=False)
        t2 = system.send(alice, basic, 42, b"x")
        assert t1.underlying_hops <= t2.underlying_hops

    def test_stale_hint_falls_back_to_dht(self, system, alice):
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)
        victim_root = system.network.closest_alive(tunnel.hops[1].hop_id)
        system.fail_node(victim_root)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        stale = trace.records[1]
        assert stale.hint_failed and not stale.via_hint
        assert stale.promoted

    def test_displaced_root_still_serves_via_hint(self, system, alice):
        """A hinted node that lost root status but kept its replica
        (it is still in the k-closest set) legitimately serves the
        hop — decoupling hop identity from a specific node."""
        tunnel = system.form_tunnel(alice, length=2, use_hints=True)
        hop = tunnel.hops[0]
        old_root = system.network.closest_alive(hop.hop_id)
        new_id = hop.hop_id + 1
        system.join_node(new_id)
        assert system.network.closest_alive(hop.hop_id) == new_id
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        first = trace.records[0]
        assert first.via_hint and first.hop_node == old_root

    def test_alive_but_evicted_hint_routes_onward(self, system, alice):
        """A hinted node that is alive but lost its replica entirely
        (pushed out of the k-closest set by joins) forwards the message
        into the DHT from where it sits (§5 fallback)."""
        tunnel = system.form_tunnel(alice, length=2, use_hints=True)
        hop = tunnel.hops[0]
        old_root = system.network.closest_alive(hop.hop_id)
        # Join k nodes closer to the hopid than the old root: it drops
        # out of the replica set and its copy is handed off.
        for off in range(1, system.store.k + 1):
            system.join_node(hop.hop_id + off)
        assert old_root not in system.store.replica_set(hop.hop_id)
        assert not system.store.storage_of(old_root).contains(hop.hop_id)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        first = trace.records[0]
        assert first.hint_failed and not first.via_hint
        assert first.hop_node == system.network.closest_alive(hop.hop_id)
        # fallback started from the hinted node, not the initiator
        assert first.underlying_path[1] == old_root

    def test_stale_hint_not_double_counted(self, system, alice):
        """Regression: an alive-but-evicted hint's probe link is the
        first edge of ``underlying_path`` and must not be charged a
        second time by ``underlying_hops``."""
        tunnel = system.form_tunnel(alice, length=2, use_hints=True)
        hop = tunnel.hops[0]
        for off in range(1, system.store.k + 1):
            system.join_node(hop.hop_id + off)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        first = trace.records[0]
        assert first.hint_failed and not first.hint_timeout
        link_sum = sum(
            max(0, len(rec.underlying_path) - 1) for rec in trace.records
        ) + max(0, len(trace.exit_path) - 1)
        assert trace.underlying_hops == link_sum

    def test_dead_hint_charged_exactly_one_timeout_link(self, system, alice):
        """A hint probe to a dead node costs one extra physical link
        (probe + timeout) on top of the recorded paths — exactly one."""
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)
        victim_root = system.network.closest_alive(tunnel.hops[1].hop_id)
        system.fail_node(victim_root)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
        stale = trace.records[1]
        assert stale.hint_timeout and stale.hint_failed
        timeouts = sum(1 for rec in trace.records if rec.hint_timeout)
        assert timeouts == 1
        link_sum = sum(
            max(0, len(rec.underlying_path) - 1) for rec in trace.records
        ) + max(0, len(trace.exit_path) - 1)
        assert trace.underlying_hops == link_sum + timeouts


def _reply_setup(system, alice, length=3):
    """Form a hinted reply tunnel and register its pending bid."""
    reply_tunnel = system.form_reply_tunnel(alice, length=length, use_hints=True)
    fake = make_fake_onion(random.Random(1))
    first_hop, blob = build_reply_onion(
        reply_tunnel.onion_layers(), reply_tunnel.bid, fake
    )
    alice.register_pending(PendingReply(
        bid=reply_tunnel.bid,
        temp_keypair=RsaKeyPair.generate(random.Random(2), 512),
        reply_hops=reply_tunnel.hop_ids,
    ))
    return reply_tunnel, first_hop, blob


def _link_sum(trace):
    return sum(
        max(0, len(rec.underlying_path) - 1) for rec in trace.records
    ) + max(0, len(trace.exit_path) - 1)


class TestReplyPathHints:
    """§5 hint accounting must behave identically on reply traversal.

    The reply construction carries hop *i*'s hint inside hop *i-1*'s
    layer, so the first reply hop is never hinted (the responder gets
    only ``first_hop_id`` in the clear) and the terminating ``bid``
    leg carries no hint either.
    """

    def test_hints_used_when_fresh(self, system, alice):
        _, first_hop, blob = _reply_setup(system, alice, length=3)
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"a")
        assert trace.success
        first = trace.records[0]
        assert not first.via_hint and not first.hint_failed
        # hops 2..l arrive via their hints: exactly one physical link
        for rec in trace.records[1:3]:
            assert rec.via_hint and not rec.hint_failed
            assert not rec.hint_timeout
            assert len(rec.underlying_path) == 2
        assert trace.underlying_hops == _link_sum(trace)

    def test_dead_hint_charged_exactly_one_timeout_link(self, system, alice):
        tunnel, first_hop, blob = _reply_setup(system, alice, length=3)
        victim_root = system.network.closest_alive(tunnel.hops[1].hop_id)
        system.fail_node(victim_root)
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"a")
        assert trace.success
        stale = next(r for r in trace.records if r.hop_id == tunnel.hops[1].hop_id)
        assert stale.hint_timeout and stale.hint_failed and not stale.via_hint
        timeouts = sum(1 for rec in trace.records if rec.hint_timeout)
        assert timeouts == 1
        assert trace.underlying_hops == _link_sum(trace) + timeouts

    def test_displaced_root_still_serves_via_hint(self, system, alice):
        tunnel, first_hop, blob = _reply_setup(system, alice, length=3)
        hop = tunnel.hops[1]
        old_root = system.network.closest_alive(hop.hop_id)
        system.join_node(hop.hop_id + 1)
        assert system.network.closest_alive(hop.hop_id) != old_root
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"a")
        assert trace.success
        rec = next(r for r in trace.records if r.hop_id == hop.hop_id)
        assert rec.via_hint and rec.hop_node == old_root

    def test_alive_but_evicted_hint_not_double_counted(self, system, alice):
        tunnel, first_hop, blob = _reply_setup(system, alice, length=3)
        hop = tunnel.hops[1]
        old_root = system.network.closest_alive(hop.hop_id)
        for off in range(1, system.store.k + 1):
            system.join_node(hop.hop_id + off)
        assert not system.store.storage_of(old_root).contains(hop.hop_id)
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"a")
        assert trace.success
        rec = next(r for r in trace.records if r.hop_id == hop.hop_id)
        assert rec.hint_failed and not rec.hint_timeout and not rec.via_hint
        # fallback started from the hinted node: its probe link is the
        # first edge of underlying_path and is charged exactly once
        assert rec.underlying_path[1] == old_root
        assert trace.underlying_hops == _link_sum(trace)

    def test_promoted_with_expected_roots(self, system, alice):
        """With the initiator's formation metadata supplied, fail-over
        is recorded as ``promoted`` exactly as on the forward path."""
        tunnel, first_hop, blob = _reply_setup(system, alice, length=3)
        expected_roots = {
            h.hop_id: h.meta.get("formed_root") for h in tunnel.hops
        }
        victim_root = system.network.closest_alive(tunnel.hops[1].hop_id)
        system.fail_node(victim_root)
        responder = _destination(system)
        trace = system.forwarder.send_reply(
            responder, first_hop, blob, b"a", expected_roots=expected_roots
        )
        assert trace.success
        rec = next(r for r in trace.records if r.hop_id == tunnel.hops[1].hop_id)
        assert rec.promoted
        others = [r for r in trace.records if r.hop_id != tunnel.hops[1].hop_id]
        assert not any(r.promoted for r in others)

    def test_promoted_stays_false_without_expected_roots(self, system, alice):
        tunnel, first_hop, blob = _reply_setup(system, alice, length=3)
        system.fail_node(system.network.closest_alive(tunnel.hops[1].hop_id))
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"a")
        assert trace.success
        assert not any(r.promoted for r in trace.records)


class TestReplyTraversal:
    def test_reply_reaches_initiator(self, system, alice):
        reply_tunnel = system.form_reply_tunnel(alice, length=3)
        fake = make_fake_onion(random.Random(1))
        first_hop, blob = build_reply_onion(
            reply_tunnel.onion_layers(), reply_tunnel.bid, fake
        )
        got = []
        alice.register_pending(PendingReply(
            bid=reply_tunnel.bid,
            temp_keypair=RsaKeyPair.generate(random.Random(2), 512),
            reply_hops=reply_tunnel.hop_ids,
            callback=got.append,
        ))
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"answer")
        assert trace.success
        assert trace.destination == alice.node_id
        assert got == [b"answer"]

    def test_reply_survives_hop_failure(self, system, alice):
        reply_tunnel = system.form_reply_tunnel(alice, length=3)
        fake = make_fake_onion(random.Random(1))
        first_hop, blob = build_reply_onion(
            reply_tunnel.onion_layers(), reply_tunnel.bid, fake
        )
        alice.register_pending(PendingReply(
            bid=reply_tunnel.bid,
            temp_keypair=RsaKeyPair.generate(random.Random(2), 512),
            reply_hops=reply_tunnel.hop_ids,
        ))
        system.fail_node(system.network.closest_alive(reply_tunnel.hops[1].hop_id))
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"answer")
        assert trace.success

    def test_unclaimed_bid_breaks(self, system, alice):
        """Without a pending-reply registration the last leg lands on a
        node with neither a THA nor a pending bid."""
        reply_tunnel = system.form_reply_tunnel(alice, length=2)
        fake = make_fake_onion(random.Random(1))
        first_hop, blob = build_reply_onion(
            reply_tunnel.onion_layers(), reply_tunnel.bid, fake
        )
        responder = _destination(system)
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"answer")
        assert not trace.success
