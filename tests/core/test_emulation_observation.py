"""Tests for emulation observation taps and cover traffic."""

import random

import pytest

from repro.core.emulation import TapEmulation
from repro.core.system import TapSystem
from repro.simnet.topology import Topology


@pytest.fixture()
def setup():
    system = TapSystem.bootstrap(num_nodes=150, seed=41)
    alice = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(alice, count=8)
    emu = TapEmulation.from_system(system, topology=Topology(seed=42))
    return system, alice, emu


class TestMetadataTaps:
    def test_tap_sees_every_physical_delivery(self, setup):
        system, alice, emu = setup
        events = []
        emu.taps.append(lambda t, s, d, b: events.append((t, s, d, b)))
        tunnel = system.form_tunnel(alice, length=2)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x", size_bits=1000)
        emu.simulator.run()
        assert trace.delivered
        # one event per physical hop of the recorded path
        assert len(events) == len(trace.path) - 1
        assert [d for _, _, d, _ in events] == trace.path[1:]

    def test_tap_sees_only_metadata_sizes(self, setup):
        system, alice, emu = setup
        sizes = []
        emu.taps.append(lambda t, s, d, b: sizes.append(b))
        tunnel = system.form_tunnel(alice, length=2)
        emu.send_through_tunnel(alice, tunnel, 42, b"x", size_bits=5000)
        emu.simulator.run()
        assert all(b == sizes[0] for b in sizes)  # constant along the path

    def test_multiple_taps_all_invoked(self, setup):
        system, alice, emu = setup
        counts = [0, 0]
        emu.taps.append(lambda *a: counts.__setitem__(0, counts[0] + 1))
        emu.taps.append(lambda *a: counts.__setitem__(1, counts[1] + 1))
        tunnel = system.form_tunnel(alice, length=2)
        emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert counts[0] == counts[1] > 0


class TestContentTaps:
    def test_exit_reveal_fires_once_with_destination(self, setup):
        system, alice, emu = setup
        reveals = []
        emu.content_taps.append(lambda t, n, dest, b: reveals.append((n, dest)))
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(alice, tunnel, 4242, b"x")
        emu.simulator.run()
        assert trace.delivered
        assert len(reveals) == 1
        tail_node, dest = reveals[0]
        assert dest == 4242
        assert tail_node == system.network.closest_alive(tunnel.hops[-1].hop_id)


class TestCoverTraffic:
    def test_cover_messages_delivered_and_counted(self, setup):
        system, alice, emu = setup
        rng = random.Random(1)
        traces = emu.inject_cover_traffic(rng, messages=10, size_bits=500,
                                          over_seconds=5.0)
        emu.simulator.run()
        assert all(t.delivered for t in traces)
        assert emu.net.delivered_count == 10

    def test_cover_traffic_visible_to_taps(self, setup):
        """The whole point: an observer cannot tell cover from real by
        metadata — both arrive through the same tap."""
        system, alice, emu = setup
        events = []
        emu.taps.append(lambda t, s, d, b: events.append(b))
        rng = random.Random(2)
        emu.inject_cover_traffic(rng, messages=5, size_bits=777, over_seconds=2.0)
        emu.simulator.run()
        assert events.count(777) == 5

    def test_cover_traffic_costs_bandwidth(self, setup):
        system, alice, emu = setup
        rng = random.Random(3)
        before = emu.net.bits_sent
        emu.inject_cover_traffic(rng, messages=4, size_bits=1000, over_seconds=1.0)
        emu.simulator.run()
        assert emu.net.bits_sent == before + 4000

    def test_cover_spread_over_interval(self, setup):
        system, alice, emu = setup
        rng = random.Random(4)
        times = []
        emu.taps.append(lambda t, s, d, b: times.append(t))
        emu.inject_cover_traffic(rng, messages=20, size_bits=100, over_seconds=60.0)
        emu.simulator.run()
        assert max(times) - min(times) > 10.0
