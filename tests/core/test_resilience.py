"""Tests for the initiator-side resilience layer.

Covers the policy/breaker primitives, the policy-managed session path
(including the reply-tunnel fail-over acceptance scenario: dropped
reply hop -> health probe -> reform -> retry exactly once), graceful
degradation, and resilient retrieval.
"""

import random

import pytest

from repro.core.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientReply,
    anchors_reachable,
)
from repro.core.session import SessionServer, TapSession
from repro.core.system import TapSystem
from repro.obs import SpanTracer


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(jitter=1.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_threshold=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(attempt_link_budget=0)

    def test_backoff_grows_exponentially(self):
        policy = ResiliencePolicy(base_backoff_s=0.1, backoff_factor=2.0,
                                  max_backoff_s=10.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff_delay(a, rng) for a in (1, 2, 3)]
        assert delays == pytest.approx([0.1, 0.2, 0.4])

    def test_backoff_caps(self):
        policy = ResiliencePolicy(base_backoff_s=0.5, backoff_factor=4.0,
                                  max_backoff_s=1.0, jitter=0.0)
        assert policy.backoff_delay(5, random.Random(0)) == pytest.approx(1.0)

    def test_jitter_bounded_and_deterministic(self):
        policy = ResiliencePolicy(base_backoff_s=0.1, jitter=0.25)
        a = [policy.backoff_delay(1, random.Random(7)) for _ in range(3)]
        b = [policy.backoff_delay(1, random.Random(7)) for _ in range(3)]
        assert a[0] == b[0]
        for d in a:
            assert 0.075 <= d <= 0.125


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        br = CircuitBreaker(threshold=3)
        assert not br.record_failure()
        assert not br.record_failure()
        assert br.record_failure()  # trips now
        assert br.state == "open"
        assert br.trips == 1
        assert not br.record_failure()  # already open: no second trip

    def test_reform_half_opens_and_success_closes(self):
        br = CircuitBreaker(threshold=1)
        br.record_failure()
        br.on_reform()
        assert br.state == "half-open"
        assert br.consecutive_failures == 0
        br.record_success()
        assert br.state == "closed"


class TestResilientReply:
    def test_ok_semantics(self):
        assert ResilientReply(b"x").ok
        assert not ResilientReply(None).ok
        assert not ResilientReply(b"stale", degraded=True).ok


@pytest.fixture()
def tracer():
    return SpanTracer()


@pytest.fixture()
def traced_system(tracer):
    system = TapSystem.bootstrap(num_nodes=150, seed=5)
    system.attach_observability(tracer=tracer)
    return system


@pytest.fixture()
def alice(traced_system):
    node = traced_system.tap_node(traced_system.random_node_id("alice"))
    traced_system.deploy_thas(node, count=16)
    return node


@pytest.fixture()
def server(traced_system):
    node_id = traced_system.random_node_id("server")
    return SessionServer(node_id, handler=lambda req: b"echo:" + req)


class TestAnchorsReachable:
    def test_healthy_tunnel(self, traced_system, alice):
        tunnel = traced_system.form_tunnel(alice, 3)
        assert anchors_reachable(
            traced_system.network, traced_system.store, tunnel.hops
        )

    def test_lost_anchor_detected(self, traced_system, alice):
        tunnel = traced_system.form_tunnel(alice, 3)
        # single-node failure is survived by replica fail-over (the
        # paper's claim) — losing the anchor takes the whole replica set
        for holder in list(traced_system.store.holders(tunnel.hops[0].hop_id)):
            traced_system.fail_node(holder, repair=False)
        assert not anchors_reachable(
            traced_system.network, traced_system.store, tunnel.hops
        )


class TestReplyFailover:
    def test_dropped_reply_hop_reforms_and_retries_exactly_once(
        self, traced_system, tracer, alice, server
    ):
        """The satellite-4 scenario: a reply hop dies mid-session; the
        next request fails once, the hedged probe implicates the reply
        tunnel, exactly one reform + one retry recover the session."""
        policy = ResiliencePolicy(max_retries=3, degraded_ok=False)
        session = TapSession(traced_system, alice, server,
                             tunnel_length=3, policy=policy)
        assert session.request(b"warm") == b"echo:warm"

        # A single hop-node crash is absorbed by replica fail-over (the
        # paper's structural story); to present the initiator with a
        # genuinely dead reply leg, the hop anchor's whole replica set
        # must go down before re-replication runs (repair=False).
        forward_roots = {
            traced_system.network.closest_alive(h.hop_id)
            for h in session.forward.hops
        }
        off_limits = forward_roots | {alice.node_id, server.node_id}
        victims = None
        for tha in session.reply.hops:
            holders = set(traced_system.store.holders(tha.hop_id))
            if not holders & off_limits:
                victims = holders
                break
        assert victims is not None, "no isolatable reply hop (seed drift?)"
        for victim in victims:
            traced_system.fail_node(victim, repair=False)

        reply = session.request_resilient(b"after-crash")
        assert reply.value == b"echo:after-crash"
        assert reply.ok and reply.recovered
        assert reply.attempts == 2
        assert reply.reformed == ("reply",)

        stats = session.stats
        assert stats.retries == 1
        assert stats.tunnel_reforms == 1
        assert stats.recovered_responses == 1
        assert stats.health_probes == 2  # one hedged probe pair
        assert stats.proactive_reforms == 0
        assert stats.effective_availability == pytest.approx(0.5)
        assert stats.availability == pytest.approx(1.0)

        # Span tree: exactly one session.reform (which="reply"), nested
        # in the same trace as the recovering session.request root.
        reforms = [s for s in tracer if s.name == "session.reform"]
        assert len(reforms) == 1
        assert reforms[0].attrs["which"] == "reply"
        probes = [s for s in tracer if s.name == "session.probe"]
        assert len(probes) == 1
        assert probes[0].attrs == {"observer": "initiator",
                                   "initiator": alice.node_id,
                                   "forward": True, "reply": False}
        requests = [s for s in tracer if s.name == "session.request"]
        recovering = requests[-1]
        assert recovering.attrs["success"] is True
        assert recovering.attrs["attempts"] == 2
        assert reforms[0].trace_id == recovering.trace_id
        assert probes[0].trace_id == recovering.trace_id


class TestGracefulDegradation:
    def test_last_known_good_served_when_server_gone(
        self, traced_system, alice, server
    ):
        policy = ResiliencePolicy(max_retries=1, degraded_ok=True)
        session = TapSession(traced_system, alice, server,
                             tunnel_length=3, policy=policy)
        assert session.request_resilient(b"cache-me").value == b"echo:cache-me"

        traced_system.fail_node(server.node_id, repair=False)
        reply = session.request_resilient(b"too-late")
        assert reply.degraded
        assert not reply.ok
        assert reply.value == b"echo:cache-me"  # the stale fallback
        assert session.stats.degraded_responses == 1
        assert session.stats.failures == 1

    def test_hard_failure_without_degraded_ok(
        self, traced_system, alice, server
    ):
        policy = ResiliencePolicy(max_retries=1, degraded_ok=False)
        session = TapSession(traced_system, alice, server,
                             tunnel_length=3, policy=policy)
        session.request_resilient(b"cache-me")
        traced_system.fail_node(server.node_id, repair=False)
        reply = session.request_resilient(b"too-late")
        assert reply.value is None and not reply.degraded
        assert session.stats.degraded_responses == 0

    def test_policy_routes_legacy_request(self, traced_system, alice, server):
        session = TapSession(traced_system, alice, server,
                             tunnel_length=3,
                             policy=ResiliencePolicy(max_retries=1))
        assert session.request(b"hi") == b"echo:hi"
        assert session.stats.responses == 1


class TestResilientRetrieval:
    def test_degraded_retrieval_serves_cached_copy(self, traced_system, alice):
        fid = traced_system.publish(b"the-file", name=b"paper.pdf")
        forward = traced_system.form_tunnel(alice, 3)
        reply = traced_system.form_reply_tunnel(alice, 3)
        first = traced_system.retrieve_resilient(alice, fid, forward, reply)
        assert first.success and first.content == b"the-file"
        assert not first.degraded
        assert first.meta["attempts"] == 1

        forward, reply = first.meta["tunnels"]
        for holder in list(traced_system.store.holders(fid)):
            traced_system.fail_node(holder, repair=False)
        policy = ResiliencePolicy(max_retries=1, degraded_ok=True)
        second = traced_system.retrieve_resilient(
            alice, fid, forward, reply, policy=policy
        )
        assert second.success and second.degraded
        assert second.content == b"the-file"
        assert second.meta["attempts"] == 2
