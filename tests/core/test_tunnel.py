"""Tests for tunnel formation and scattered anchor selection (§3.5)."""

import random

import pytest

from repro.core.tha import generate_tha
from repro.core.tunnel import ReplyTunnel, Tunnel, TunnelFormationError, select_scattered
from repro.util.ids import id_digit


def _thas(count, deployed=True, seed=1):
    rng = random.Random(seed)
    out = []
    for t in range(count):
        tha = generate_tha(b"node", b"hkey", t, rng)
        tha.deployed = deployed
        out.append(tha)
    return out


class TestTunnel:
    def test_requires_hops(self):
        with pytest.raises(TunnelFormationError):
            Tunnel(hops=[])

    def test_hint_defaults(self):
        t = Tunnel(hops=_thas(3))
        assert t.hint_ips == [None, None, None]

    def test_hint_length_checked(self):
        with pytest.raises(ValueError):
            Tunnel(hops=_thas(3), hint_ips=["1.2.3.4"])

    def test_hop_ids_and_length(self):
        thas = _thas(4)
        t = Tunnel(hops=thas)
        assert t.length == 4
        assert t.hop_ids == [x.hop_id for x in thas]

    def test_onion_layers_carry_keys_and_hints(self):
        thas = _thas(2)
        t = Tunnel(hops=thas, hint_ips=["10.0.0.1", None])
        layers = t.onion_layers()
        assert layers[0].hop_id == thas[0].hop_id
        assert layers[0].key is thas[0].anchor.key
        assert layers[0].ip_hint == "10.0.0.1"
        assert layers[1].ip_hint == ""


class TestReplyTunnel:
    def test_requires_bid(self):
        with pytest.raises(ValueError):
            ReplyTunnel(hops=_thas(2))

    def test_carries_bid(self):
        t = ReplyTunnel(hops=_thas(2), bid=99)
        assert t.bid == 99


class TestSelectScattered:
    def test_needs_enough_deployed(self):
        thas = _thas(5, deployed=False)
        with pytest.raises(TunnelFormationError):
            select_scattered(thas, 3, random.Random(1))

    def test_ignores_undeployed(self):
        thas = _thas(3) + _thas(3, deployed=False, seed=2)
        chosen = select_scattered(thas, 3, random.Random(1))
        assert all(t.deployed for t in chosen)

    def test_selects_requested_count_distinct(self):
        thas = _thas(30)
        chosen = select_scattered(thas, 5, random.Random(1))
        assert len(chosen) == 5
        assert len({id(t) for t in chosen}) == 5

    def test_prefixes_scatter_when_possible(self):
        """With enough prefix diversity, chosen hopids must have
        pairwise-distinct leading digits (§3.5)."""
        thas = _thas(200, seed=5)
        for _ in range(10):
            chosen = select_scattered(thas, 5, random.Random(2))
            prefixes = [id_digit(t.hop_id, 0) for t in chosen]
            assert len(set(prefixes)) == 5

    def test_relaxes_when_fewer_groups_than_hops(self):
        # All anchors share the leading digit -> scattering impossible,
        # selection must still succeed.
        thas = [t for t in _thas(300, seed=7) if id_digit(t.hop_id, 0) == 3]
        assert len(thas) >= 4
        chosen = select_scattered(thas, 4, random.Random(3))
        assert len(chosen) == 4

    def test_deterministic_per_rng(self):
        thas = _thas(50)
        a = select_scattered(thas, 5, random.Random(9))
        b = select_scattered(thas, 5, random.Random(9))
        assert [t.hop_id for t in a] == [t.hop_id for t in b]

    def test_multi_digit_scatter(self):
        thas = _thas(300, seed=11)
        chosen = select_scattered(
            thas, 4, random.Random(1), scatter_digits=2
        )
        pairs = [(id_digit(t.hop_id, 0), id_digit(t.hop_id, 1)) for t in chosen]
        assert len(set(pairs)) == 4
