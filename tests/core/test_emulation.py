"""Tests for the event-driven TAP emulation."""

import pytest

from repro.core.emulation import CONTROL_BITS, TapEmulation
from repro.core.system import TapSystem
from repro.simnet.topology import Topology
from repro.simnet.transport import TransferModel, path_transfer_time


@pytest.fixture()
def setup():
    system = TapSystem.bootstrap(num_nodes=200, seed=31)
    alice = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(alice, count=10)
    topo = Topology(seed=5)
    emu = TapEmulation.from_system(system, topology=topo)
    return system, alice, topo, emu


class TestDelivery:
    def test_payload_delivered_with_simulated_time(self, setup):
        system, alice, topo, emu = setup
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"hello")
        assert trace.finished_at is None  # nothing ran yet
        emu.simulator.run()
        assert trace.delivered
        assert trace.payload == b"hello"
        assert trace.destination == system.network.closest_alive(42)
        assert trace.latency > 0

    def test_latency_matches_analytic_path_model(self, setup):
        """THE cross-validation: event-driven latency == the Figure-6
        store-and-forward formula over the path actually taken."""
        system, alice, topo, emu = setup
        tunnel = system.form_tunnel(alice, length=3)
        size = 2_000_000.0
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x", size_bits=size)
        emu.simulator.run()
        assert trace.delivered
        expected = path_transfer_time(
            topo, trace.path, size + CONTROL_BITS, TransferModel.STORE_AND_FORWARD
        )
        assert trace.latency == pytest.approx(expected, rel=1e-12)

    def test_on_done_callback(self, setup):
        system, alice, topo, emu = setup
        tunnel = system.form_tunnel(alice, length=2)
        done = []
        emu.send_through_tunnel(alice, tunnel, 42, b"x", on_done=done.append)
        emu.simulator.run()
        assert len(done) == 1 and done[0].delivered

    def test_larger_payload_takes_longer(self, setup):
        system, alice, topo, emu = setup
        t1 = system.form_tunnel(alice, length=2)
        small = emu.send_through_tunnel(alice, t1, 42, b"x", size_bits=1_000)
        emu.simulator.run()
        emu2 = TapEmulation.from_system(system, topology=topo)
        t2 = system.form_tunnel(alice, length=2)
        big = emu2.send_through_tunnel(alice, t2, 42, b"x", size_bits=5_000_000)
        emu2.simulator.run()
        assert big.latency > small.latency

    def test_concurrent_transmissions(self, setup):
        system, alice, topo, emu = setup
        tunnels = [system.form_tunnel(alice, length=2) for _ in range(3)]
        traces = [
            emu.send_through_tunnel(alice, t, 42, f"m{i}".encode())
            for i, t in enumerate(tunnels)
        ]
        emu.simulator.run()
        assert all(t.delivered for t in traces)
        assert {t.payload for t in traces} == {b"m0", b"m1", b"m2"}


class TestFailureTimeouts:
    def test_timeout_discovery_without_eager_repair(self):
        """With lazy overlay repair, the dead hop node is discovered by
        a message timeout, charged as a round-trip, then rerouted."""
        system = TapSystem.bootstrap(num_nodes=200, seed=33)
        system.network.eager_repair = False
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=8)
        tunnel = system.form_tunnel(alice, length=3)
        emu = TapEmulation.from_system(system, topology=Topology(seed=6))

        victim = system.network.closest_alive(tunnel.hops[1].hop_id)
        emu.fail_node(victim)  # store repaired; neighbours' state stale

        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert trace.delivered, trace.failed_reason
        assert trace.timeouts >= 1

    def test_timeout_costs_round_trip(self):
        system = TapSystem.bootstrap(num_nodes=200, seed=34)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=8)
        topo = Topology(seed=7)

        tunnel = system.form_tunnel(alice, length=3)
        emu = TapEmulation.from_system(system, topology=topo)
        baseline = emu.send_through_tunnel(alice, tunnel, 42, b"x", size_bits=1_000)
        emu.simulator.run()

        system2 = TapSystem.bootstrap(num_nodes=200, seed=34)
        system2.network.eager_repair = False
        alice2 = system2.tap_node(system2.random_node_id("alice"))
        system2.deploy_thas(alice2, count=8)
        tunnel2 = system2.form_tunnel(alice2, length=3)
        emu2 = TapEmulation.from_system(system2, topology=topo)
        victim = system2.network.closest_alive(tunnel2.hops[0].hop_id)
        emu2.fail_node(victim)
        degraded = emu2.send_through_tunnel(alice2, tunnel2, 42, b"x", size_bits=1_000)
        emu2.simulator.run()

        assert degraded.delivered
        if degraded.timeouts:
            assert degraded.latency > baseline.latency * 0.5  # sanity

    def test_lost_anchor_reported(self):
        system = TapSystem.bootstrap(num_nodes=200, seed=35)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=8)
        tunnel = system.form_tunnel(alice, length=3)
        emu = TapEmulation.from_system(system, topology=Topology(seed=8))
        for holder in list(system.store.holders(tunnel.hops[1].hop_id)):
            system.network.fail(holder)
            emu.net.fail(holder)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert not trace.delivered
        assert "no replica" in trace.failed_reason


class TestHints:
    def test_hinted_path_is_direct(self, setup):
        system, alice, topo, emu = setup
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert trace.delivered
        # initiator + 3 hinted hops; only the exit leg may need routing
        roots = [system.network.closest_alive(h.hop_id) for h in tunnel.hops]
        assert trace.path[1:4] == roots

    def test_hinted_faster_than_basic(self, setup):
        system, alice, topo, emu = setup
        basic = system.form_tunnel(alice, length=3)
        hinted = system.form_tunnel(alice, length=3, use_hints=True)
        t_basic = emu.send_through_tunnel(alice, basic, 42, b"x", size_bits=2e6)
        t_hint = emu.send_through_tunnel(alice, hinted, 42, b"x", size_bits=2e6)
        emu.simulator.run()
        assert t_hint.delivered and t_basic.delivered
        assert t_hint.latency <= t_basic.latency

    def test_stale_hint_times_out_then_falls_back(self):
        system = TapSystem.bootstrap(num_nodes=200, seed=36)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=8)
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)
        emu = TapEmulation.from_system(system, topology=Topology(seed=9))
        victim = system.network.closest_alive(tunnel.hops[1].hop_id)
        emu.fail_node(victim)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert trace.delivered, trace.failed_reason
        assert trace.hint_failures >= 1
        assert trace.timeouts >= 1  # the hinted probe timed out
