"""Tests for anonymous THA deployment and deletion (§3.3–§3.4)."""

import pytest

from repro.core.deploy import DeploymentError, select_prefix_diverse
from repro.core.tha import tha_value_decode
from repro.past.storage import StorageError


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def owner(system):
    return system.tap_node(system.random_node_id("owner"))


class TestDeployment:
    def test_anchors_land_on_replica_sets(self, system, owner):
        report = system.deploy_thas(owner, count=4)
        assert len(report.deployed) == 4
        for tha in report.deployed:
            assert tha.deployed
            holders = system.store.holders(tha.hop_id)
            assert holders == set(system.store.replica_set(tha.hop_id))
            stored = system.store.fetch(tha.hop_id)
            assert tha_value_decode(tha.hop_id, stored.value) == tha.anchor

    def test_owner_not_on_bootstrap_path(self, system, owner):
        report = system.deploy_thas(owner, count=3)
        for path in report.relay_paths:
            assert owner.node_id not in path

    def test_relay_paths_prefix_diverse(self, system, owner):
        report = system.deploy_thas(owner, count=3)
        for path in report.relay_paths:
            prefixes = [
                system.network.nodes[nid].ip.split(".")[0] for nid in path
            ]
            assert len(set(prefixes)) == len(prefixes)

    def test_dead_relay_aborts_then_retries(self, system, owner):
        """§3.3: a dead bootstrap relay aborts the session; the node
        retries over a fresh path until deployment succeeds."""
        thas = [owner.new_tha() for _ in range(2)]
        candidates = [
            system.tap_node(nid)
            for nid in system.network.alive_ids[:20]
            if nid != owner.node_id
        ]
        # Kill one candidate *after* selection pools are built: patch
        # the deployer to observe aborts by killing the first chosen
        # relay just before processing.
        deployer = system.deployer
        original = deployer._relay_process
        killed = {}

        def sabotage(relay, blob):
            if not killed:
                killed["victim"] = relay.node_id
                system.network.fail(relay.node_id)
                system.store.on_fail(relay.node_id)
                raise DeploymentError("relay died mid-path")
            return original(relay, blob)

        deployer._relay_process = sabotage
        try:
            report = deployer.deploy(owner, thas, candidates, max_attempts=5)
        finally:
            deployer._relay_process = original
        assert report.aborted_paths == 1
        assert report.attempts == 2
        assert all(t.deployed for t in thas)

    def test_gives_up_after_max_attempts(self, system, owner):
        thas = [owner.new_tha()]
        candidates = [
            system.tap_node(nid)
            for nid in system.network.alive_ids[:10]
            if nid != owner.node_id
        ]
        deployer = system.deployer

        def always_fail(relay, blob):
            raise DeploymentError("network hates you")

        original = deployer._relay_process
        deployer._relay_process = always_fail
        try:
            with pytest.raises(DeploymentError):
                deployer.deploy(owner, thas, candidates, max_attempts=3)
        finally:
            deployer._relay_process = original
        assert not thas[0].deployed

    def test_empty_batch_rejected(self, system, owner):
        with pytest.raises(ValueError):
            system.deployer.deploy(owner, [], [], max_attempts=1)


class TestDeletion:
    def test_owner_can_delete(self, system, owner):
        report = system.deploy_thas(owner, count=2)
        tha = report.deployed[0]
        assert system.deployer.delete(owner, tha)
        assert not system.store.exists(tha.hop_id)
        assert tha not in owner.owned_thas

    def test_non_owner_cannot_delete(self, system, owner):
        """§3.4: without PW the THA is undeletable; replica holders
        only ever see H(PW)."""
        report = system.deploy_thas(owner, count=1)
        tha = report.deployed[0]
        assert not system.store.delete(tha.hop_id, b"guess")
        assert not system.store.delete(tha.hop_id, tha.anchor.pw_hash)
        assert system.store.exists(tha.hop_id)


class TestPrefixDiverseSelection:
    def test_distinct_prefixes_when_available(self, system):
        nodes = [system.tap_node(nid) for nid in system.network.alive_ids[:40]]
        rng = system.seeds.pyrandom("sel-test")
        chosen = select_prefix_diverse(nodes, 5, rng)
        prefixes = [n.ip.split(".")[0] for n in chosen]
        assert len(set(prefixes)) == 5

    def test_not_enough_candidates(self, system):
        nodes = [system.tap_node(system.network.alive_ids[0])]
        with pytest.raises(DeploymentError):
            select_prefix_diverse(nodes, 2, system.seeds.pyrandom("x"))

    def test_relaxation_fills_count(self, system):
        # Force duplicate prefixes by reusing the same node object list.
        base = [system.tap_node(nid) for nid in system.network.alive_ids[:3]]
        rng = system.seeds.pyrandom("relax")
        chosen = select_prefix_diverse(base * 2, 3, rng)
        assert len(chosen) == 3

    def test_count_validation(self, system):
        with pytest.raises(ValueError):
            select_prefix_diverse([], 0, system.seeds.pyrandom("x"))
