"""Tests for CPU-puzzle deployment charging (§3.3 DoS defence)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.puzzles import (
    PuzzleError,
    PuzzlePolicy,
    _leading_zero_bits,
    solve_puzzle,
    verify_puzzle,
)


class TestLeadingZeroBits:
    def test_all_zero(self):
        assert _leading_zero_bits(b"\x00\x00") == 16

    def test_high_bit_set(self):
        assert _leading_zero_bits(b"\x80") == 0

    def test_partial(self):
        assert _leading_zero_bits(b"\x00\x10") == 11  # 8 + 3

    def test_one(self):
        assert _leading_zero_bits(b"\x01") == 7


class TestSolveVerify:
    @given(hop_id=st.integers(min_value=0, max_value=(1 << 128) - 1),
           difficulty=st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_solutions_verify(self, hop_id, difficulty):
        nonce = solve_puzzle(hop_id, difficulty)
        assert verify_puzzle(hop_id, nonce, difficulty)

    def test_zero_difficulty_free(self):
        assert solve_puzzle(123, 0) == 0
        assert verify_puzzle(123, 999, 0)

    def test_wrong_nonce_rejected(self):
        nonce = solve_puzzle(42, 8)
        # a different hopid invalidates the proof
        assert not verify_puzzle(43, nonce, 8) or solve_puzzle(43, 8) == nonce

    def test_difficulty_monotone_in_verification(self):
        nonce = solve_puzzle(42, 10)
        assert verify_puzzle(42, nonce, 10)
        assert verify_puzzle(42, nonce, 5)  # easier bar also passes

    def test_out_of_range_difficulty(self):
        with pytest.raises(PuzzleError):
            solve_puzzle(1, -1)
        with pytest.raises(PuzzleError):
            solve_puzzle(1, 65)

    def test_max_attempts_bound(self):
        with pytest.raises(PuzzleError):
            solve_puzzle(1, 30, max_attempts=4)

    def test_invalid_nonce_range(self):
        assert not verify_puzzle(1, -1, 4)
        assert not verify_puzzle(1, 1 << 64, 4)

    def test_work_scales_with_difficulty(self):
        """Statistically, harder puzzles need larger nonces (more
        attempts) — the charging property."""
        easy = [solve_puzzle(h, 4) for h in range(200, 240)]
        hard = [solve_puzzle(h, 10) for h in range(200, 240)]
        assert sum(hard) / len(hard) > 5 * (sum(easy) / len(easy) + 1)


class TestPolicy:
    def test_disabled_by_default(self):
        policy = PuzzlePolicy()
        assert not policy.enabled
        assert policy.expected_work() == 0
        assert policy.admit(1, 0)

    def test_charge_and_admit(self):
        policy = PuzzlePolicy(difficulty=8)
        nonce = policy.charge(777)
        assert policy.admit(777, nonce)
        assert not policy.admit(778, nonce) or policy.charge(778) == nonce

    def test_expected_work(self):
        assert PuzzlePolicy(difficulty=10).expected_work() == 1024


class TestDeploymentIntegration:
    def test_charged_deployment_succeeds(self, tap_system):
        """Honest deployment with charging enabled works end to end."""
        tap_system.deployer.puzzle_policy = PuzzlePolicy(difficulty=6)
        alice = tap_system.tap_node(tap_system.random_node_id("alice"))
        report = tap_system.deploy_thas(alice, count=3)
        assert len(report.deployed) == 3

    def test_unpaid_deployment_rejected(self, tap_system):
        """A flooder skipping the charge is refused by storing nodes."""
        from repro.core.deploy import DeploymentError

        class CheatingPolicy(PuzzlePolicy):
            """Flooder behaviour: claims a zero nonce instead of
            paying the CPU cost; verification still enforces it."""

            def charge(self, hop_id: int) -> int:  # type: ignore[override]
                return 0

        deployer = tap_system.deployer
        deployer.puzzle_policy = CheatingPolicy(difficulty=16)
        alice = tap_system.tap_node(tap_system.random_node_id("alice"))
        thas = [alice.new_tha()]
        candidates = [
            tap_system.tap_node(nid)
            for nid in tap_system.network.alive_ids[:10]
            if nid != alice.node_id
        ]
        with pytest.raises(DeploymentError):
            deployer.deploy(alice, thas, candidates, max_attempts=2)
        assert not thas[0].deployed
