"""Tests for tunnel hop anchors (§3.1–§3.2)."""

import random

import pytest

from repro.core.tha import (
    OwnedTha,
    TunnelHopAnchor,
    generate_tha,
    tha_value_decode,
    tha_value_encode,
)
from repro.crypto.hashing import hash_password, verify_password
from repro.crypto.symmetric import SymmetricKey


class TestGeneration:
    def test_owner_holds_secrets(self):
        tha = generate_tha(b"node-a", b"hkey", 1, random.Random(1))
        assert verify_password(tha.pw, tha.anchor.pw_hash)
        assert not tha.deployed
        assert tha.created_at == 1

    def test_hopid_node_specific(self):
        a = generate_tha(b"node-a", b"hkey", 1, random.Random(1))
        b = generate_tha(b"node-b", b"hkey", 1, random.Random(1))
        assert a.hop_id != b.hop_id

    def test_hopid_unlinkable_without_hkey(self):
        """Same node, same time, different hkey -> different hopid: an
        observer who knows node identifiers but not hkeys cannot link
        by recomputation (§3.2)."""
        a = generate_tha(b"node-a", b"hkey1", 1, random.Random(1))
        b = generate_tha(b"node-a", b"hkey2", 1, random.Random(1))
        assert a.hop_id != b.hop_id

    def test_timestamps_give_fresh_hopids(self):
        rng = random.Random(1)
        ids = {generate_tha(b"n", b"h", t, rng).hop_id for t in range(100)}
        assert len(ids) == 100

    def test_key_and_pw_are_random_not_derived(self):
        a = generate_tha(b"n", b"h", 1, random.Random(1))
        b = generate_tha(b"n", b"h", 1, random.Random(2))
        assert a.hop_id == b.hop_id  # deterministic hash
        assert a.anchor.key != b.anchor.key  # random material
        assert a.pw != b.pw

    def test_no_collisions_across_many_nodes(self):
        rng = random.Random(3)
        hopids = {
            generate_tha(f"node-{n}".encode(), b"h", t, rng).hop_id
            for n in range(40)
            for t in range(25)
        }
        assert len(hopids) == 1000


class TestAnchorValidation:
    def test_pw_hash_length_enforced(self):
        with pytest.raises(ValueError):
            TunnelHopAnchor(1, SymmetricKey(b"k" * 16), b"short")

    def test_frozen(self):
        anchor = TunnelHopAnchor(1, SymmetricKey(b"k" * 16), hash_password(b"x"))
        with pytest.raises(AttributeError):
            anchor.hop_id = 2  # type: ignore[misc]


class TestValueEncoding:
    def test_roundtrip(self):
        tha = generate_tha(b"n", b"h", 1, random.Random(1))
        blob = tha_value_encode(tha.anchor)
        decoded = tha_value_decode(tha.hop_id, blob)
        assert decoded == tha.anchor

    def test_value_contains_key_and_pw_hash_only(self):
        """The stored 'file content' is K + H(PW) (§3.1): the PW itself
        must never be serialised."""
        tha = generate_tha(b"n", b"h", 1, random.Random(1))
        blob = tha_value_encode(tha.anchor)
        assert tha.anchor.key.key_bytes in blob
        assert tha.anchor.pw_hash in blob
        assert tha.pw not in blob

    def test_owned_accessors(self):
        tha = generate_tha(b"n", b"h", 7, random.Random(1))
        assert tha.hop_id == tha.anchor.hop_id
        assert tha.key is tha.anchor.key
