"""Span-tree shape tests: the tracer threaded through the engine.

Every substrate (forwarder, Pastry routing, onion peeling, sessions,
retrieval, the emulation) must emit causally-nested spans whose link
attribution agrees with the traces the engine already reports.
"""

import random

import pytest

from repro.core.emulation import TapEmulation
from repro.core.node import PendingReply
from repro.core.session import SessionServer, TapSession
from repro.crypto.asymmetric import RsaKeyPair
from repro.crypto.onion import build_reply_onion, make_fake_onion
from repro.obs import SpanTracer
from repro.obs.critical_path import build_trees, records_from_tracer
from repro.obs.spans import INITIATOR_KEYS, RESPONDER_KEYS
from repro.simnet.topology import Topology


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def tracer(system):
    tr = SpanTracer()
    system.attach_observability(tracer=tr)
    return tr


@pytest.fixture()
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=12)
    return node


def _trees(tracer):
    return build_trees(records_from_tracer(tracer))


def _named(roots, name):
    return [s for r in roots for s in r.walk() if s.name == name]


def _reply_setup(system, alice, length=3):
    reply_tunnel = system.form_reply_tunnel(alice, length=length, use_hints=True)
    fake = make_fake_onion(random.Random(1))
    first_hop, blob = build_reply_onion(
        reply_tunnel.onion_layers(), reply_tunnel.bid, fake
    )
    alice.register_pending(PendingReply(
        bid=reply_tunnel.bid,
        temp_keypair=RsaKeyPair.generate(random.Random(2), 512),
        reply_hops=reply_tunnel.hop_ids,
    ))
    return reply_tunnel, first_hop, blob


class TestForwardSpans:
    def test_formation_span(self, system, tracer, alice):
        system.form_tunnel(alice, length=3)
        (form,) = _named(_trees(tracer), "tunnel.form")
        assert form.args["observer"] == "initiator"
        assert form.args["initiator"] == alice.node_id
        assert form.args["length"] == 3

    def test_span_tree_shape(self, system, tracer, alice):
        tunnel = system.form_tunnel(alice, length=3)
        tracer.clear()
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success

        roots = _trees(tracer)
        (root,) = [r for r in roots if r.name == "tap.forward"]
        assert root.args["success"] is True
        assert root.args["overlay_hops"] == 3
        hops = [c for c in root.children if c.name == "tap.hop"]
        assert [h.args["hop_index"] for h in hops] == [0, 1, 2]
        for hop in hops:
            child_names = {c.name for c in hop.children}
            assert "dht.route" in child_names  # no hints -> DHT lookup
            assert "onion.peel" in child_names
        assert hops[-1].args.get("is_exit") is True

    def test_hop_links_sum_to_underlying_hops(self, system, tracer, alice):
        tunnel = system.form_tunnel(alice, length=3)
        tracer.clear()
        trace = system.send(alice, tunnel, 42, b"x")

        (root,) = [r for r in _trees(tracer) if r.name == "tap.forward"]
        assert root.args["links"] == trace.underlying_hops
        hops = [c for c in root.children if c.name == "tap.hop"]
        assert sum(h.args["links"] for h in hops) == trace.underlying_hops

    def test_hinted_send_probes(self, system, tracer, alice):
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)
        tracer.clear()
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success and all(r.via_hint for r in trace.records)

        roots = _trees(tracer)
        probes = _named(roots, "hint.probe")
        assert len(probes) == 3
        assert all(p.args["outcome"] == "hit" for p in probes)
        (root,) = [r for r in roots if r.name == "tap.forward"]
        for hop in (c for c in root.children if c.name == "tap.hop"):
            assert hop.args["via_hint"] is True
            assert "hint.probe" in {c.name for c in hop.children}

    def test_failed_send_records_error(self, system, tracer, alice):
        tunnel = system.form_tunnel(alice, length=3)
        holders = list(system.store.holders(tunnel.hops[1].hop_id))
        system.fail_nodes(holders, repair_after=False)
        tracer.clear()
        trace = system.send(alice, tunnel, 42, b"x")
        assert not trace.success

        (root,) = [r for r in _trees(tracer) if r.name == "tap.forward"]
        assert root.args["success"] is False
        assert "no THA replica" in root.args["error"]


class TestReplySpans:
    def test_reply_span_tree(self, system, tracer, alice):
        reply_tunnel, first_hop, blob = _reply_setup(system, alice, length=3)
        responder = system.random_node_id("responder")
        tracer.clear()
        trace = system.forwarder.send_reply(responder, first_hop, blob, b"data")
        assert trace.success

        roots = _trees(tracer)
        (root,) = [r for r in roots if r.name == "tap.reply"]
        assert root.args["observer"] == "exit"
        assert root.args["responder"] == responder
        hops = [c for c in root.children if c.name == "tap.hop"]
        assert len(hops) == len(trace.records)
        last = hops[-1]
        assert last.args.get("delivered") is True
        assert last.args.get("matched_bid") == reply_tunnel.bid
        assert not any(
            h.args.get("delivered") for h in hops[:-1]
        )


class TestSessionSpans:
    def test_request_root(self, system, tracer, alice):
        server = SessionServer(
            system.random_node_id("server"), handler=lambda req: b"ok:" + req
        )
        session = TapSession(system, alice, server, tunnel_length=3)
        tracer.clear()
        assert session.request(b"hi") == b"ok:hi"

        roots = _trees(tracer)
        (root,) = [r for r in roots if r.name == "session.request"]
        assert root.args["success"] is True
        # the forward traversal nests under the session request
        assert _named([root], "tap.forward")

    def test_reform_nested_under_request(self, system, tracer, alice):
        server = SessionServer(
            system.random_node_id("server"), handler=lambda req: b"ok:" + req
        )
        session = TapSession(system, alice, server, tunnel_length=3)
        victim = session.forward.hops[1]
        system.fail_nodes(
            list(system.store.holders(victim.hop_id)), repair_after=False
        )
        tracer.clear()
        assert session.request(b"x") == b"ok:x"
        assert session.stats.tunnel_reforms >= 1

        roots = _trees(tracer)
        (root,) = [r for r in roots if r.name == "session.request"]
        reforms = _named([root], "session.reform")
        assert reforms and reforms[0].args["which"] == "forward"


class TestRetrievalSpans:
    def test_request_span_covers_both_directions(self, system, tracer, alice):
        fid = system.publish(b"file-content " * 50, name=b"paper.pdf")
        fwd = system.form_tunnel(alice, length=3)
        rpl = system.form_reply_tunnel(alice, length=3)
        tracer.clear()
        result = system.retrieve(alice, fid, fwd, rpl)
        assert result.success, result.failure_reason

        roots = _trees(tracer)
        (root,) = [r for r in roots if r.name == "tap.request"]
        assert root.args["success"] is True
        for name in ("tap.forward", "tap.respond", "tap.reply"):
            assert _named([root], name), f"missing {name} under tap.request"

    def test_redacted_export_never_links_endpoints(self, system, tracer, alice):
        """§4 indistinguishability: a redacted export of a full
        round-trip has no record naming both endpoints."""
        fid = system.publish(b"secret " * 20, name=b"s.bin")
        fwd = system.form_tunnel(alice, length=3, use_hints=True)
        rpl = system.form_reply_tunnel(alice, length=3, use_hints=True)
        result = system.retrieve(alice, fid, fwd, rpl)
        assert result.success

        for ev in tracer.chrome_events(redact=True):
            keys = set(ev["args"])
            assert not (keys & INITIATOR_KEYS and keys & RESPONDER_KEYS), ev
            if ev["args"].get("observer") == "hop":
                assert not keys & (INITIATOR_KEYS | RESPONDER_KEYS), ev


class TestEmulationSpans:
    def test_sim_clock_legs_account_for_latency(self, system, tracer, alice):
        emu = TapEmulation.from_system(system, topology=Topology(seed=5))
        tunnel = system.form_tunnel(alice, length=3)
        tracer.clear()
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"hello")
        emu.simulator.run()
        assert trace.delivered

        roots = _trees(tracer)
        (root,) = [r for r in roots if r.name == "emu.request"]
        assert root.args["delivered"] is True
        assert root.dur == pytest.approx(trace.latency, rel=1e-9)
        legs = [
            c for c in root.children
            if c.name in ("dht.route", "hint.direct")
        ]
        assert len(legs) == len(trace.path) - 1
        assert all(leg.args["links"] == 1 for leg in legs)
        # legs partition the transport time; peels are zero-duration,
        # so children can never exceed the end-to-end latency
        assert sum(c.dur for c in root.children) <= root.dur + 1e-9
