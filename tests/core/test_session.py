"""Tests for long-standing anonymous sessions (§1's motivating case)."""

import random

import pytest

from repro.core.session import SessionServer, TapSession


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=16)
    return node


@pytest.fixture()
def server(system):
    node_id = system.random_node_id("server")
    return SessionServer(node_id, handler=lambda req: b"echo:" + req)


@pytest.fixture()
def session(system, alice, server):
    return TapSession(system, alice, server, tunnel_length=3)


class TestRoundTrips:
    def test_request_response(self, session):
        assert session.request(b"ls -la") == b"echo:ls -la"
        assert session.stats.availability == 1.0

    def test_many_requests_same_tunnels(self, session, server):
        for i in range(5):
            assert session.request(f"cmd{i}".encode()) == f"echo:cmd{i}".encode()
        assert server.served == 5
        assert session.stats.tunnel_reforms == 0

    def test_sequence_numbers_monotone(self, session):
        session.request(b"a")
        session.request(b"b")
        assert session._seq == 2

    def test_close_releases_anchors(self, system, alice, server):
        session = TapSession(system, alice, server, tunnel_length=2)
        hop_ids = session.forward.hop_ids + session.reply.hop_ids
        session.close(delete_anchors=True)
        for hid in hop_ids:
            assert not system.store.exists(hid)


class TestSelfHealing:
    def test_survives_hop_node_failures(self, system, session):
        """The headline: hop nodes die mid-session, requests keep
        succeeding without even needing a reform (replica fail-over)."""
        assert session.request(b"before") == b"echo:before"
        for tha in session.forward.hops:
            system.fail_node(system.network.closest_alive(tha.hop_id))
        system.fail_node(
            system.network.closest_alive(session.reply.hops[0].hop_id)
        )
        assert session.request(b"after") == b"echo:after"
        assert session.stats.availability == 1.0

    def test_reforms_after_anchor_loss(self, system, session):
        """Losing an entire replica set breaks the tunnel; the session
        detects it, reforms, retries, and the request still succeeds."""
        victim_hop = session.forward.hops[1]
        holders = list(system.store.holders(victim_hop.hop_id))
        system.fail_nodes(holders, repair_after=False)

        assert session.request(b"critical") == b"echo:critical"
        assert session.stats.tunnel_reforms >= 1
        assert session.stats.retries >= 1
        assert session.stats.availability == 1.0

    def test_reply_tunnel_loss_reforms_reply(self, system, session):
        victim_hop = session.reply.hops[1]
        old_bid = session.reply.bid
        holders = list(system.store.holders(victim_hop.hop_id))
        system.fail_nodes(holders, repair_after=False)

        assert session.request(b"x") == b"echo:x"
        assert session.reply.bid != old_bid or session.stats.tunnel_reforms >= 1

    def test_gives_up_after_retries(self, system, alice, server):
        """If reforms cannot help (e.g. the server is dead), the
        request fails after max_retries and is counted."""
        session = TapSession(system, alice, server, tunnel_length=2, max_retries=1)
        system.fail_node(server.node_id)
        assert session.request(b"y") is None
        assert session.stats.failures == 1
        assert session.stats.availability == 0.0

    def test_long_session_under_continuous_churn(self, system, alice, server):
        """An extended session with hop nodes failing between requests
        keeps near-perfect availability — the paper's remote-login
        scenario."""
        session = TapSession(system, alice, server, tunnel_length=3)
        rng = random.Random(1009)
        protected = {alice.node_id, server.node_id}
        ok = 0
        for i in range(10):
            # Kill a random current hop node of the session each round.
            tunnel = session.forward if i % 2 == 0 else session.reply
            tha = tunnel.hops[rng.randrange(len(tunnel.hops))]
            victim = system.network.closest_alive(tha.hop_id)
            if victim not in protected:
                system.fail_node(victim)
            if session.request(f"r{i}".encode()) == f"echo:r{i}".encode():
                ok += 1
        assert ok == 10
        assert session.stats.availability == 1.0
