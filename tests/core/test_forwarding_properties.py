"""Property-based tests of the tunneling engine.

Hypothesis drives tunnel length, payload content, and failure
placement; the engine must uphold its invariants for every draw.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.system import TapSystem

# Module-scoped systems: hypothesis replays many examples, so the
# overlay is built once and tunnels draw from a large anchor pool.


@pytest.fixture(scope="module")
def system():
    return TapSystem.bootstrap(num_nodes=200, seed=9001)


@pytest.fixture(scope="module")
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=40)
    return node


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    length=st.integers(min_value=1, max_value=5),
    payload=st.binary(min_size=0, max_size=2000),
    dest=st.integers(min_value=0, max_value=(1 << 128) - 1),
)
def test_any_tunnel_delivers_any_payload(system, alice, length, payload, dest):
    """Round-trip invariant: whatever goes in comes out, at the node
    numerically closest to the destination key, after exactly
    ``length`` overlay hops."""
    tunnel = system.form_tunnel(alice, length=length)
    try:
        delivered = []
        trace = system.forwarder.send(
            alice, tunnel, dest, payload,
            deliver=lambda nid, data: delivered.append((nid, data)),
        )
        assert trace.success, trace.failure_reason
        assert trace.overlay_hops == length
        assert delivered == [(system.network.closest_alive(dest), payload)]
        # every hop served by the current replica root of its anchor
        for rec, tha in zip(trace.records, tunnel.hops):
            assert rec.hop_node == system.network.closest_alive(tha.hop_id)
    finally:
        system.retire_tunnel(alice, tunnel)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    length=st.integers(min_value=2, max_value=4),
    hop_index=st.integers(min_value=0, max_value=3),
    payload=st.binary(min_size=1, max_size=200),
)
def test_single_hop_node_failure_never_breaks_tunnel(system, alice, length,
                                                     hop_index, payload):
    """For any hop position, killing the current hop node (with repair)
    leaves the tunnel functional — the Figure-2 guarantee at k=3."""
    tunnel = system.form_tunnel(alice, length=length)
    try:
        victim_hop = tunnel.hops[hop_index % length]
        root = system.network.closest_alive(victim_hop.hop_id)
        if root != alice.node_id:
            system.fail_node(root)
        trace = system.forwarder.send(alice, tunnel, 42, payload)
        assert trace.success, trace.failure_reason
        assert trace.delivered_payload == payload
    finally:
        system.retire_tunnel(alice, tunnel)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(payload=st.binary(min_size=1, max_size=500))
def test_intermediate_hops_never_see_plaintext(system, alice, payload):
    """Layered encryption: the payload bytes must not appear in any
    intermediate representation of the onion."""
    import repro.crypto.onion as onion_mod
    from repro.crypto.onion import build_onion

    tunnel = system.form_tunnel(alice, length=3)
    try:
        blob = build_onion(tunnel.onion_layers(), 42, payload)
        # outermost blob
        if len(payload) >= 8:  # tiny payloads can collide by chance
            assert payload not in blob
        # after one peel (what hop 1 relays onward)
        peeled = onion_mod.peel_layer(tunnel.hops[0].anchor.key, blob)
        if len(payload) >= 8:
            assert payload not in peeled.inner
    finally:
        system.retire_tunnel(alice, tunnel)
