"""Tests for the §4 anonymous file retrieval application."""

import pytest


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=12)
    return node


@pytest.fixture()
def published(system):
    content = b"file-content " * 100
    fid = system.publish(content, name=b"paper.pdf")
    return fid, content


class TestHappyPath:
    def test_end_to_end(self, system, alice, published):
        fid, content = published
        fwd = system.form_tunnel(alice, length=3)
        rpl = system.form_reply_tunnel(alice, length=3)
        result = system.retrieve(alice, fid, fwd, rpl)
        assert result.success, result.failure_reason
        assert result.content == content

    def test_request_and_reply_use_different_tunnels(self, system, alice, published):
        """§4: the reply tunnel differs from the request tunnel to
        hinder request/reply correlation."""
        fid, _ = published
        fwd = system.form_tunnel(alice, length=3)
        rpl = system.form_reply_tunnel(alice, length=3)
        assert set(fwd.hop_ids).isdisjoint(rpl.hop_ids)
        result = system.retrieve(alice, fid, fwd, rpl)
        fwd_hops = [r.hop_id for r in result.forward_trace.records]
        rpl_hops = [r.hop_id for r in result.reply_trace.records]
        assert set(fwd_hops).isdisjoint(rpl_hops)

    def test_reply_ends_at_initiator_via_bid(self, system, alice, published):
        fid, _ = published
        result = system.retrieve(
            alice, fid,
            system.form_tunnel(alice, length=2),
            system.form_reply_tunnel(alice, length=2),
        )
        assert result.reply_trace.destination == alice.node_id
        # reply walked 2 hops + the bid leg
        assert result.reply_trace.overlay_hops == 3

    def test_pending_state_cleaned_up(self, system, alice, published):
        fid, _ = published
        rpl = system.form_reply_tunnel(alice, length=2)
        system.retrieve(alice, fid, system.form_tunnel(alice, length=2), rpl)
        assert rpl.bid not in alice.pending_replies

    def test_responder_is_fid_root(self, system, alice, published):
        fid, _ = published
        result = system.retrieve(
            alice, fid,
            system.form_tunnel(alice, length=2),
            system.form_reply_tunnel(alice, length=2),
        )
        assert result.forward_trace.exit_path[-1] == system.network.closest_alive(fid)


class TestFailureModes:
    def test_missing_file(self, system, alice):
        bogus_fid = 777777
        result = system.retrieve(
            alice, bogus_fid,
            system.form_tunnel(alice, length=2),
            system.form_reply_tunnel(alice, length=2),
        )
        assert not result.success
        assert "responder" in result.failure_reason

    def test_forward_tunnel_hop_lost(self, system, alice, published):
        fid, _ = published
        fwd = system.form_tunnel(alice, length=3)
        holders = list(system.store.holders(fwd.hops[0].hop_id))
        system.fail_nodes(holders, repair_after=False)
        result = system.retrieve(
            alice, fid, fwd, system.form_reply_tunnel(alice, length=3)
        )
        assert not result.success
        assert result.failure_reason.startswith("forward")

    def test_reply_tunnel_hop_lost(self, system, alice, published):
        fid, _ = published
        rpl = system.form_reply_tunnel(alice, length=3)
        holders = list(system.store.holders(rpl.hops[1].hop_id))
        system.fail_nodes(holders, repair_after=False)
        result = system.retrieve(
            alice, fid, system.form_tunnel(alice, length=3), rpl
        )
        assert not result.success
        assert result.failure_reason.startswith("reply")

    def test_retrieval_survives_hop_node_failures(self, system, alice, published):
        """The paper's motivating scenario: individual tunnel hop
        nodes fail (with repair) and the retrieval still completes."""
        fid, content = published
        fwd = system.form_tunnel(alice, length=3)
        rpl = system.form_reply_tunnel(alice, length=3)
        system.fail_node(system.network.closest_alive(fwd.hops[1].hop_id))
        system.fail_node(system.network.closest_alive(rpl.hops[0].hop_id))
        result = system.retrieve(alice, fid, fwd, rpl)
        assert result.success, result.failure_reason
        assert result.content == content


class TestAccounting:
    def test_underlying_hops_positive(self, system, alice, published):
        fid, _ = published
        result = system.retrieve(
            alice, fid,
            system.form_tunnel(alice, length=2),
            system.form_reply_tunnel(alice, length=2),
        )
        assert result.total_underlying_hops >= result.forward_trace.overlay_hops

    def test_optimised_tunnels_cut_hops(self, system, alice, published):
        fid, _ = published
        basic = system.retrieve(
            alice, fid,
            system.form_tunnel(alice, length=3),
            system.form_reply_tunnel(alice, length=3),
        )
        hinted = system.retrieve(
            alice, fid,
            system.form_tunnel(alice, length=3, use_hints=True),
            system.form_reply_tunnel(alice, length=3),
        )
        assert hinted.forward_trace.underlying_hops <= basic.forward_trace.underlying_hops
