"""Tests for the TapSystem façade, TapNode, and the refresh policy."""

import pytest

from repro.core.refresh import RefreshPolicy
from repro.core.system import TapSystem
from repro.core.tunnel import Tunnel
from repro.util.ids import ring_distance


class TestBootstrap:
    def test_builds_requested_size(self, tap_system):
        assert tap_system.network.size == 150
        assert tap_system.store.k == 3

    def test_deterministic_per_seed(self):
        a = TapSystem.bootstrap(num_nodes=30, seed=1)
        b = TapSystem.bootstrap(num_nodes=30, seed=1)
        assert a.network.alive_ids == b.network.alive_ids

    def test_seed_changes_overlay(self):
        a = TapSystem.bootstrap(num_nodes=30, seed=1)
        b = TapSystem.bootstrap(num_nodes=30, seed=2)
        assert a.network.alive_ids != b.network.alive_ids

    def test_ip_index_complete(self, tap_system):
        assert len(tap_system.ip_index) == 150
        for ip, nid in tap_system.ip_index.items():
            assert tap_system.network.nodes[nid].ip == ip


class TestTapNodeRegistry:
    def test_lazily_created_and_cached(self, tap_system):
        nid = tap_system.network.alive_ids[0]
        assert tap_system.tap_node(nid) is tap_system.tap_node(nid)

    def test_random_node_deterministic_per_label(self, tap_system):
        assert tap_system.random_node_id("x") == tap_system.random_node_id("x")
        assert tap_system.random_node_id("x") != tap_system.random_node_id("y")


class TestBidGeneration:
    def test_bid_maps_to_owner(self, tap_system):
        """The reply's last leg must land on the initiator: the bid's
        numerically closest node is the generating node."""
        for label in range(10):
            node = tap_system.tap_node(tap_system.random_node_id(label))
            bid = node.make_bid(tap_system.network.alive_ids)
            assert tap_system.network.closest_alive(bid) == node.node_id

    def test_bids_vary(self, tap_system):
        node = tap_system.tap_node(tap_system.random_node_id("bids"))
        ids = tap_system.network.alive_ids
        bids = {node.make_bid(ids) for _ in range(20)}
        assert len(bids) > 1

    def test_bid_not_own_id(self, tap_system):
        """bid != nodeid keeps the last leg unlinkable to the node id."""
        node = tap_system.tap_node(tap_system.random_node_id("own"))
        ids = tap_system.network.alive_ids
        assert all(node.make_bid(ids) != node.node_id for _ in range(10))


class TestMembershipEvents:
    def test_fail_node_keeps_store_consistent(self, tap_system):
        fid = tap_system.publish(b"data")
        victim = tap_system.store.root(fid)
        tap_system.fail_node(victim)
        assert tap_system.store.verify_invariants() == []
        assert tap_system.store.fetch(fid).value == b"data"

    def test_join_node_updates_ip_index(self, tap_system):
        new_id = 12345678901234567890
        tap_system.join_node(new_id)
        node = tap_system.network.nodes[new_id]
        assert tap_system.ip_index[node.ip] == new_id

    def test_mass_failure_without_repair_loses_objects(self, tap_system):
        fid = tap_system.publish(b"data")
        holders = list(tap_system.store.holders(fid))
        tap_system.fail_nodes(holders, repair_after=False)
        assert not tap_system.store.exists(fid)


class TestHintResolution:
    def test_hint_cache_populated(self, tap_system):
        alice = tap_system.tap_node(tap_system.random_node_id("alice"))
        tap_system.deploy_thas(alice, count=6)
        tunnel = tap_system.form_tunnel(alice, length=3, use_hints=True)
        for tha, hint in zip(tunnel.hops, tunnel.hint_ips):
            ip, root = alice.hint_cache[tha.hop_id]
            assert hint == ip
            assert root == tap_system.network.closest_alive(tha.hop_id)


class TestRefreshPolicy:
    def test_due_logic(self):
        policy = RefreshPolicy(interval=5.0)
        tunnel = Tunnel.__new__(Tunnel)
        tunnel.formed_at = 10.0
        assert not policy.due(tunnel, 12.0)
        assert policy.due(tunnel, 15.0)

    def test_never_refresh(self):
        policy = RefreshPolicy(interval=0)
        tunnel = Tunnel.__new__(Tunnel)
        tunnel.formed_at = 0.0
        assert not policy.due(tunnel, 1e9)

    def test_refresh_replaces_anchors(self, tap_system):
        alice = tap_system.tap_node(tap_system.random_node_id("alice"))
        tap_system.deploy_thas(alice, count=6)
        old = tap_system.form_tunnel(alice, length=3, now=0.0)
        old_hopids = set(old.hop_ids)
        policy = RefreshPolicy(interval=1.0)
        new = policy.refresh(tap_system, alice, old, now=2.0)
        assert new.length == old.length
        assert new.formed_at == 2.0
        # old anchors removed from the DHT (deleted with PW)
        for hop_id in old_hopids:
            assert not tap_system.store.exists(hop_id)
        # new tunnel avoids the deleted anchors
        assert set(new.hop_ids).isdisjoint(old_hopids)
        # and the new tunnel still works
        trace = tap_system.send(alice, new, 42, b"x")
        assert trace.success
