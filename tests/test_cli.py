"""Tests for the tap-repro command-line interface."""

import json

import pytest

from repro.cli import _ALL_RUNNERS, _EXTENSIONS, _FIGURES, main


class TestRegistry:
    def test_every_figure_registered(self):
        assert set(_FIGURES) == {"fig2", "fig3", "fig4a", "fig4b", "fig5", "fig6"}

    def test_extensions_registered(self):
        assert {"tradeoff", "hints", "scatter", "timing", "secure-routing",
                "durability"} <= set(_EXTENSIONS)

    def test_all_runners_have_fast_configs(self):
        for name, (config_cls, runner, desc) in _ALL_RUNNERS.items():
            assert callable(runner)
            assert desc
            assert hasattr(config_cls, "fast")


class TestInvocation:
    def test_single_figure(self, capsys):
        assert main(["fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "malicious_fraction" in out

    def test_seed_override_changes_nothing_structural(self, capsys):
        assert main(["fig3", "--fast", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "corrupted_tunnels" in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "rows.csv"
        assert main(["fig3", "--fast", "--csv", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("figure,")
        assert "fig3" in content

    def test_outdir_output(self, tmp_path, capsys):
        assert main(["fig4a", "--fast", "--outdir", str(tmp_path)]) == 0
        assert (tmp_path / "fig4a.csv").exists()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_extension_invocation(self, capsys):
        assert main(["scatter", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "scattered" in out


class TestObservabilityFlags:
    def test_metrics_out_writes_json_and_csv(self, tmp_path, capsys):
        import json

        target = tmp_path / "metrics.json"
        assert main(["fig6", "--fast", "--metrics-out", str(target)]) == 0
        snapshot = json.loads(target.read_text())
        # the Fig. 6 pipeline recorded routing and latency histograms
        assert snapshot["pastry.route.hops"]["type"] == "histogram"
        assert snapshot["fig6.link_latency_s"]["count"] > 0
        for key in ("p50", "p95", "p99"):
            assert key in snapshot["fig6.link_latency_s"]
        csv_path = tmp_path / "metrics.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("metric,type,")

    def test_audit_flag_accepted(self, capsys):
        assert main(["fig6", "--fast", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out

    def test_metrics_flag_ignored_by_nonsupporting_runner(self, tmp_path):
        # fig3 is a pure Monte-Carlo model with no overlay to instrument;
        # the flag must not break it, and the snapshot is just empty.
        target = tmp_path / "metrics.json"
        assert main(["fig3", "--fast", "--metrics-out", str(target)]) == 0
        assert target.read_text().strip() in ("{}",)


@pytest.fixture(scope="module")
def fig6_trace(tmp_path_factory):
    """One fig6 --fast run with --trace-out, shared by the span tests."""
    path = tmp_path_factory.mktemp("trace") / "fig6.json"
    assert main(["fig6", "--fast", "--trace-out", str(path)]) == 0
    return path


class TestSpanTracing:
    def test_trace_out_writes_valid_chrome_trace(self, fig6_trace):
        doc = json.loads(fig6_trace.read_text())
        events = doc["traceEvents"]
        assert events and all(ev["ph"] == "X" for ev in events)
        for ev in events:
            assert {"name", "cat", "ts", "dur", "args"} <= set(ev)
            assert "span_id" in ev["args"]

    def test_trace_out_writes_event_jsonl_sibling(self, fig6_trace):
        sibling = fig6_trace.with_suffix(".events.jsonl")
        lines = sibling.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "fig6.transfer" in kinds

    def test_span_trees_sum_to_reported_latency(self, fig6_trace):
        """Acceptance: every per-request span tree's children sum
        (within rounding) to the end-to-end latency on its root, and
        the root matches the transfer time the runner reported."""
        from repro.obs.critical_path import build_trees, load_trace_file

        roots = build_trees(load_trace_file(fig6_trace))
        assert roots
        for root in roots:
            assert root.name == "tap.request"
            assert root.children, "request trace with no leg spans"
            child_sum = sum(c.dur for c in root.children)
            assert child_sum == pytest.approx(root.dur, rel=1e-9, abs=1e-9)
            assert root.dur == pytest.approx(
                root.args["transfer_time_s"], rel=1e-9
            )

    def test_trace_subcommand_prints_breakdown(self, fig6_trace, capsys):
        assert main(["trace", str(fig6_trace)]) == 0
        out = capsys.readouterr().out
        assert "per-phase latency attribution" in out
        assert "critical path of trace" in out
        assert "routing" in out and "hint-probe" in out

    def test_trace_subcommand_csv(self, fig6_trace, tmp_path, capsys):
        target = tmp_path / "breakdown.csv"
        assert main(["trace", str(fig6_trace), "--csv", str(target)]) == 0
        header = target.read_text().splitlines()[0]
        assert header.startswith("phase,")

    def test_trace_redact_strips_linkage(self, tmp_path):
        from repro.obs.spans import INITIATOR_KEYS, RESPONDER_KEYS

        path = tmp_path / "redacted.json"
        assert main(
            ["fig6", "--fast", "--trace-out", str(path), "--trace-redact"]
        ) == 0
        for ev in json.loads(path.read_text())["traceEvents"]:
            keys = set(ev["args"])
            assert not (keys & INITIATOR_KEYS and keys & RESPONDER_KEYS), ev

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 1
        assert "cannot analyse" in capsys.readouterr().err

    def test_trace_subcommand_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["trace", str(path)]) == 1
        assert "contains no spans" in capsys.readouterr().err

    def test_trace_flag_ignored_by_nonsupporting_runner(self, tmp_path):
        # fig3 has no overlay; the tracer threads through harmlessly
        # and the export is just empty.
        path = tmp_path / "fig3.json"
        assert main(["fig3", "--fast", "--trace-out", str(path)]) == 0
        assert json.loads(path.read_text())["traceEvents"] == []


class TestChaosSubcommand:
    CHAOS = ["chaos", "--fast", "--seed", "7", "--plan", "smoke",
             "--no-baseline"]

    def test_list_plans(self, capsys):
        assert main(["chaos", "--list-plans"]) == 0
        out = capsys.readouterr().out
        for name in ("lossy", "flaky", "partition", "churn",
                     "byzantine", "smoke"):
            assert name in out

    def test_unknown_plan(self, capsys):
        assert main(["chaos", "--plan", "nope"]) == 1
        assert "unknown fault plan" in capsys.readouterr().err

    def test_run_prints_report(self, capsys):
        assert main(self.CHAOS) == 0
        out = capsys.readouterr().out
        assert "per-session health" in out
        assert "availability" in out and "digest" in out

    def test_report_and_events_outputs(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        events = tmp_path / "events.jsonl"
        assert main(self.CHAOS + ["--report-out", str(report),
                                  "--events-out", str(events)]) == 0
        parsed = json.loads(report.read_text())
        assert parsed["plan"] == "smoke"
        assert parsed["summary"]["requests"] > 0
        assert "events_jsonl" not in parsed  # canonical form is slim
        kinds = {json.loads(line)["kind"]
                 for line in events.read_text().splitlines()}
        assert "chaos.round" in kinds

    def test_deterministic_replay_byte_identical(self, tmp_path, capsys):
        r1, r2 = tmp_path / "r1.json", tmp_path / "r2.json"
        e1, e2 = tmp_path / "e1.jsonl", tmp_path / "e2.jsonl"
        assert main(self.CHAOS + ["--report-out", str(r1),
                                  "--events-out", str(e1)]) == 0
        assert main(self.CHAOS + ["--report-out", str(r2),
                                  "--events-out", str(e2)]) == 0
        assert r1.read_bytes() == r2.read_bytes()
        assert e1.read_bytes() == e2.read_bytes()

    def test_assert_availability_gate(self, capsys):
        assert main(self.CHAOS + ["--assert-availability", "0.5"]) == 0
        assert main(self.CHAOS + ["--assert-availability", "1.01"]) == 2
        assert "BELOW THRESHOLD" in capsys.readouterr().err

    def test_assert_deterministic_gate(self, capsys):
        assert main(self.CHAOS + ["--assert-deterministic"]) == 0
        assert "deterministic replay ok" in capsys.readouterr().out

    def test_baseline_comparison_line(self, capsys):
        assert main(["chaos", "--fast", "--seed", "7", "--plan", "smoke"]) == 0
        assert "no-policy baseline" in capsys.readouterr().out


class TestMetricsFormats:
    def test_openmetrics_format(self, tmp_path, capsys):
        target = tmp_path / "metrics.om"
        assert main(["fig6", "--fast", "--metrics-out", str(target),
                     "--metrics-format", "openmetrics"]) == 0
        text = target.read_text()
        assert text.endswith("# EOF\n")
        assert "tap_pastry_route_hops" in text
        assert not target.with_suffix(".csv").exists()

    def test_jsonl_format(self, tmp_path, capsys):
        target = tmp_path / "metrics.jsonl"
        assert main(["fig6", "--fast", "--metrics-out", str(target),
                     "--metrics-format", "jsonl"]) == 0
        lines = [json.loads(l) for l in target.read_text().splitlines()]
        assert any(d["metric"] == "pastry.route.hops" for d in lines)

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig6", "--fast", "--metrics-out", "m.json",
                  "--metrics-format", "xml"])


class TestRunManifest:
    def test_manifest_written_next_to_artifacts(self, tmp_path, capsys):
        assert main(["fig3", "--fast", "--outdir", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["command"] == "run fig3"
        assert manifest["configs"]["fig3"]["num_nodes"] > 0
        assert "workers" not in manifest["configs"]["fig3"]
        assert len(manifest["results"]["fig3"]["digest"]) == 64
        assert manifest["artifacts"][0]["path"] == "fig3.csv"
        assert "wall_time_s" in manifest["volatile"]

    def test_no_artifacts_no_manifest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fig3", "--fast"]) == 0
        assert not (tmp_path / "manifest.json").exists()

    def test_explicit_manifest_out(self, tmp_path, capsys):
        target = tmp_path / "ledger" / "m.json"
        assert main(["fig3", "--fast", "--manifest-out", str(target)]) == 0
        manifest = json.loads(target.read_text())
        assert manifest["results"]["fig3"]["rows"] > 0
        assert manifest["artifacts"] == []

    def test_manifest_core_worker_independent(self, tmp_path, capsys):
        from repro.obs.manifest import canonical_manifest, load_manifest

        cmd = ["scale-churn", "--fast", "--seed", "3"]
        d1, d4 = tmp_path / "w1", tmp_path / "w4"
        assert main(cmd + ["--workers", "1", "--outdir", str(d1)]) == 0
        assert main(cmd + ["--workers", "2", "--outdir", str(d4)]) == 0
        m1 = load_manifest(d1 / "manifest.json")
        m4 = load_manifest(d4 / "manifest.json")
        assert canonical_manifest(m1) == canonical_manifest(m4)
        assert m1["digest"] == m4["digest"]
        assert m1["volatile"]["workers"] == 1
        assert m4["volatile"]["workers"] == 2

    def test_scale_churn_manifest_records_summary(self, tmp_path, capsys):
        assert main(["scale-churn", "--fast",
                     "--outdir", str(tmp_path)]) == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        summary = manifest["results"]["scale-churn"]["summary"]
        assert summary["scale.route_agreement"] == 1.0

    def test_chaos_manifest(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["chaos", "--fast", "--seed", "7", "--plan", "smoke",
                     "--report-out", str(report)]) == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["command"] == "chaos smoke"
        assert set(manifest["results"]) == {"chaos", "chaos-baseline"}
        assert manifest["results"]["chaos"]["summary"]["availability"] >= 0
        assert manifest["artifacts"][0]["kind"] == "chaos-report"


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    """A populated results tree: one run + one chaos invocation."""
    root = tmp_path_factory.mktemp("results")
    assert main(["fig6", "--fast", "--outdir", str(root / "fig6"),
                 "--metrics-out", str(root / "fig6" / "metrics.json"),
                 "--audit"]) == 0
    assert main(["chaos", "--fast", "--seed", "7", "--plan", "smoke",
                 "--report-out", str(root / "chaos" / "report.json")]) == 0
    assert main(["scale-churn", "--fast",
                 "--outdir", str(root / "scale")]) == 0
    return root


class TestReportSubcommand:
    def test_report_round_trip(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["report", str(results_dir), "--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "# Run report" in printed
        report = json.loads(out.read_text())
        assert len(report["runs"]) == 3
        ind = report["indicators"]
        assert ind["audit.violations"] == 0
        assert ind["chaos.availability"] > 0
        assert ind["scale.route_agreement"] == 1.0

    def test_markdown_output_file(self, results_dir, tmp_path, capsys):
        md = tmp_path / "report.md"
        assert main(["report", str(results_dir), "--md", str(md)]) == 0
        assert "## Indicators" in md.read_text()

    def test_missing_dir_errors(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "not a directory" in capsys.readouterr().err


class TestGateSubcommand:
    PASSING_SLO = """
[slo.audit]
indicator = "audit.violations"
max = 0

[slo.chaos]
indicator = "chaos.availability"
min = 0.5
"""

    def test_gate_passes(self, results_dir, tmp_path, capsys):
        slo = tmp_path / "slo.toml"
        slo.write_text(self.PASSING_SLO)
        assert main(["gate", str(results_dir), "--slo", str(slo)]) == 0
        assert "all SLOs met" in capsys.readouterr().out

    def test_gate_fails_on_violation(self, results_dir, tmp_path, capsys):
        slo = tmp_path / "slo.toml"
        slo.write_text('[slo.x]\nindicator = "chaos.availability"\n'
                       'min = 1.01\n')
        assert main(["gate", str(results_dir), "--slo", str(slo)]) == 2
        assert "SLO GATE FAILED" in capsys.readouterr().err

    def test_gate_fails_on_required_missing(self, results_dir, tmp_path,
                                            capsys):
        slo = tmp_path / "slo.toml"
        slo.write_text('[slo.x]\nindicator = "no.such.indicator"\n'
                       'min = 1\n')
        assert main(["gate", str(results_dir), "--slo", str(slo)]) == 2

    def test_repo_slo_file_passes_on_results(self, results_dir, capsys):
        import pathlib

        repo_slo = pathlib.Path(__file__).resolve().parents[1] / "slo.toml"
        assert main(["gate", str(results_dir), "--slo", str(repo_slo)]) == 0

    def test_bad_slo_file(self, results_dir, tmp_path, capsys):
        slo = tmp_path / "bad.toml"
        slo.write_text("x = 1\n")
        assert main(["gate", str(results_dir), "--slo", str(slo)]) == 1
        assert "cannot load" in capsys.readouterr().err
