"""Tests for the tap-repro command-line interface."""

import pytest

from repro.cli import _ALL_RUNNERS, _EXTENSIONS, _FIGURES, main


class TestRegistry:
    def test_every_figure_registered(self):
        assert set(_FIGURES) == {"fig2", "fig3", "fig4a", "fig4b", "fig5", "fig6"}

    def test_extensions_registered(self):
        assert {"tradeoff", "hints", "scatter", "timing", "secure-routing"} <= set(
            _EXTENSIONS
        )

    def test_all_runners_have_fast_configs(self):
        for name, (config_cls, runner, desc) in _ALL_RUNNERS.items():
            assert callable(runner)
            assert desc
            assert hasattr(config_cls, "fast")


class TestInvocation:
    def test_single_figure(self, capsys):
        assert main(["fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "malicious_fraction" in out

    def test_seed_override_changes_nothing_structural(self, capsys):
        assert main(["fig3", "--fast", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "corrupted_tunnels" in out

    def test_csv_output(self, tmp_path, capsys):
        target = tmp_path / "rows.csv"
        assert main(["fig3", "--fast", "--csv", str(target)]) == 0
        content = target.read_text()
        assert content.startswith("figure,")
        assert "fig3" in content

    def test_outdir_output(self, tmp_path, capsys):
        assert main(["fig4a", "--fast", "--outdir", str(tmp_path)]) == 0
        assert (tmp_path / "fig4a.csv").exists()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_extension_invocation(self, capsys):
        assert main(["scatter", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "scattered" in out


class TestObservabilityFlags:
    def test_metrics_out_writes_json_and_csv(self, tmp_path, capsys):
        import json

        target = tmp_path / "metrics.json"
        assert main(["fig6", "--fast", "--metrics-out", str(target)]) == 0
        snapshot = json.loads(target.read_text())
        # the Fig. 6 pipeline recorded routing and latency histograms
        assert snapshot["pastry.route.hops"]["type"] == "histogram"
        assert snapshot["fig6.link_latency_s"]["count"] > 0
        for key in ("p50", "p95", "p99"):
            assert key in snapshot["fig6.link_latency_s"]
        csv_path = tmp_path / "metrics.csv"
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("metric,type,")

    def test_audit_flag_accepted(self, capsys):
        assert main(["fig6", "--fast", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out

    def test_metrics_flag_ignored_by_nonsupporting_runner(self, tmp_path):
        # fig3 is a pure Monte-Carlo model with no overlay to instrument;
        # the flag must not break it, and the snapshot is just empty.
        target = tmp_path / "metrics.json"
        assert main(["fig3", "--fast", "--metrics-out", str(target)]) == 0
        assert target.read_text().strip() in ("{}",)
