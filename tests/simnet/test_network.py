"""Tests for the message-passing façade."""

import pytest

from repro.simnet.events import Simulator
from repro.simnet.network import SimNetwork
from repro.simnet.topology import Topology


@pytest.fixture()
def net():
    sim = Simulator()
    topo = Topology(seed=1, min_latency_s=0.05, max_latency_s=0.05,
                    bandwidth_bps=1000.0)
    return sim, SimNetwork(sim, topo)


class TestDelivery:
    def test_message_delivered_with_delay(self, net):
        sim, network = net
        inbox = []
        network.attach(1, lambda n, s, d, p: inbox.append((s, d, p, sim.now)))
        network.attach(2, lambda *a: None)
        network.send(2, 1, "hello", size_bits=100)
        sim.run()
        assert len(inbox) == 1
        src, dst, payload, when = inbox[0]
        assert (src, dst, payload) == (2, 1, "hello")
        assert when == pytest.approx(0.05 + 0.1)  # latency + 100/1000

    def test_self_send_instant(self, net):
        sim, network = net
        inbox = []
        network.attach(1, lambda n, s, d, p: inbox.append(sim.now))
        network.send(1, 1, "x")
        sim.run()
        assert inbox == [0.0]

    def test_delivery_order_respects_size(self, net):
        sim, network = net
        inbox = []
        network.attach(1, lambda n, s, d, p: inbox.append(p))
        network.attach(2, lambda *a: None)
        network.send(2, 1, "big", size_bits=10_000)
        network.send(2, 1, "small", size_bits=10)
        sim.run()
        assert inbox == ["small", "big"]

    def test_stats_counted(self, net):
        sim, network = net
        network.attach(1, lambda *a: None)
        network.attach(2, lambda *a: None)
        network.send(1, 2, "a", size_bits=8)
        network.send(1, 2, "b", size_bits=8)
        sim.run()
        assert network.delivered_count == 2
        assert network.bits_sent == 16


class TestDrops:
    def test_unknown_destination_dropped(self, net):
        sim, network = net
        network.attach(1, lambda *a: None)
        record = network.send(1, 99, "void")
        sim.run()
        assert record.dropped and network.dropped_count == 1

    def test_failed_node_drops(self, net):
        sim, network = net
        network.attach(1, lambda *a: None)
        network.attach(2, lambda *a: None)
        network.fail(2)
        record = network.send(1, 2, "x")
        sim.run()
        assert record.dropped

    def test_failure_in_flight_drops(self, net):
        """Liveness is checked at delivery, not send — the race TAP's
        fail-over must survive."""
        sim, network = net
        network.attach(1, lambda *a: None)
        network.attach(2, lambda *a: None)
        record = network.send(1, 2, "x")
        network.fail(2)  # dies while message is in flight
        sim.run()
        assert record.dropped

    def test_drop_callback(self, net):
        sim, network = net
        drops = []
        network.on_drop = drops.append
        network.attach(1, lambda *a: None)
        network.send(1, 42, "x")
        sim.run()
        assert len(drops) == 1 and drops[0].dst == 42

    def test_revive_restores_delivery(self, net):
        sim, network = net
        inbox = []
        network.attach(1, lambda *a: None)
        network.attach(2, lambda n, s, d, p: inbox.append(p))
        network.fail(2)
        network.revive(2)
        network.send(1, 2, "back")
        sim.run()
        assert inbox == ["back"]

    def test_detach_removes(self, net):
        sim, network = net
        network.attach(1, lambda *a: None)
        network.detach(1)
        assert not network.is_alive(1)
        assert network.addresses == []


class TestAddresses:
    def test_alive_listing(self, net):
        _, network = net
        network.attach(1, lambda *a: None)
        network.attach(2, lambda *a: None)
        network.fail(2)
        assert network.addresses == [1]
