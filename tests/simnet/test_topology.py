"""Tests for the hash-derived link latency/bandwidth model."""

import pytest

from repro.simnet.topology import Topology, UniformLatencyModel


class TestUniformLatencyModel:
    def test_symmetric(self):
        m = UniformLatencyModel(seed=1)
        assert m.latency(10, 20) == m.latency(20, 10)

    def test_self_latency_zero(self):
        assert UniformLatencyModel(seed=1).latency(5, 5) == 0.0

    def test_within_bounds(self):
        m = UniformLatencyModel(seed=1, min_latency_s=0.01, max_latency_s=0.23)
        for a in range(20):
            for b in range(a + 1, 20):
                assert 0.01 <= m.latency(a, b) <= 0.23

    def test_deterministic_per_seed(self):
        assert UniformLatencyModel(seed=3).latency(1, 2) == UniformLatencyModel(
            seed=3
        ).latency(1, 2)

    def test_seed_changes_values(self):
        assert UniformLatencyModel(seed=3).latency(1, 2) != UniformLatencyModel(
            seed=4
        ).latency(1, 2)

    def test_distribution_roughly_uniform(self):
        """Mean of many links should sit near the interval midpoint."""
        m = UniformLatencyModel(seed=5, min_latency_s=0.0, max_latency_s=1.0)
        values = [m.latency(0, b) for b in range(1, 2001)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(seed=0, min_latency_s=0.5, max_latency_s=0.1)
        with pytest.raises(ValueError):
            UniformLatencyModel(seed=0, min_latency_s=-0.1)


class TestTopology:
    def test_link_spec(self):
        topo = Topology(seed=1, bandwidth_bps=1_500_000.0)
        link = topo.link(1, 2)
        assert link.bandwidth_bps == 1_500_000.0
        assert topo.min_latency_s <= link.latency_s <= topo.max_latency_s

    def test_path_latency_sums_links(self):
        topo = Topology(seed=1)
        path = [1, 2, 3, 4]
        expected = sum(topo.latency(a, b) for a, b in zip(path, path[1:]))
        assert topo.path_latency(path) == pytest.approx(expected)

    def test_path_latency_trivial_paths(self):
        topo = Topology(seed=1)
        assert topo.path_latency([7]) == 0.0
        assert topo.path_latency([]) == 0.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Topology(seed=1, bandwidth_bps=0)

    def test_paper_defaults(self):
        topo = Topology(seed=0)
        assert topo.min_latency_s == pytest.approx(0.010)
        assert topo.max_latency_s == pytest.approx(0.230)
        assert topo.bandwidth_bps == pytest.approx(1_500_000.0)
