"""Tests for transfer-time models."""

import pytest

from repro.simnet.topology import Topology
from repro.simnet.transport import (
    TransferModel,
    path_transfer_time,
    serialization_delay,
    transfer_time,
)


@pytest.fixture()
def topo() -> Topology:
    return Topology(seed=9, min_latency_s=0.1, max_latency_s=0.1, bandwidth_bps=1000.0)


class TestSerializationDelay:
    def test_basic(self):
        assert serialization_delay(1000, 1000) == 1.0

    def test_zero_size(self):
        assert serialization_delay(0, 1000) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            serialization_delay(-1, 1000)
        with pytest.raises(ValueError):
            serialization_delay(1, 0)


class TestTransferTime:
    def test_latency_plus_serialization(self):
        assert transfer_time(500, 0.2, 1000) == pytest.approx(0.2 + 0.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(1, -0.1, 1)


class TestPathTransfer:
    def test_empty_path_rejected(self, topo):
        with pytest.raises(ValueError):
            path_transfer_time(topo, [], 100)

    def test_single_node_path_free(self, topo):
        assert path_transfer_time(topo, [1], 100) == 0.0

    def test_store_and_forward(self, topo):
        # 3 hops, fixed 0.1s latency: 3*0.1 + 3*(1000/1000)
        t = path_transfer_time(topo, [1, 2, 3, 4], 1000.0)
        assert t == pytest.approx(0.3 + 3.0)

    def test_pipelined_beats_store_and_forward(self, topo):
        saf = path_transfer_time(topo, [1, 2, 3, 4], 10_000.0,
                                 TransferModel.STORE_AND_FORWARD)
        pipe = path_transfer_time(topo, [1, 2, 3, 4], 10_000.0,
                                  TransferModel.PIPELINED, chunk_bits=100.0)
        assert pipe < saf

    def test_pipelined_formula(self, topo):
        # propagation + full serialization once + (hops-1) chunk delays
        t = path_transfer_time(topo, [1, 2, 3], 1000.0,
                               TransferModel.PIPELINED, chunk_bits=100.0)
        assert t == pytest.approx(0.2 + 1.0 + 1 * 0.1)

    def test_pipelined_chunk_capped_by_message(self, topo):
        # chunk bigger than message: degenerates to store-and-forward
        saf = path_transfer_time(topo, [1, 2, 3], 50.0,
                                 TransferModel.STORE_AND_FORWARD)
        pipe = path_transfer_time(topo, [1, 2, 3], 50.0,
                                  TransferModel.PIPELINED, chunk_bits=10_000.0)
        assert pipe == pytest.approx(saf)

    def test_invalid_chunk_rejected(self, topo):
        with pytest.raises(ValueError):
            path_transfer_time(topo, [1, 2], 10.0, TransferModel.PIPELINED,
                               chunk_bits=0)

    def test_single_hop_models_agree(self, topo):
        saf = path_transfer_time(topo, [1, 2], 777.0, TransferModel.STORE_AND_FORWARD)
        pipe = path_transfer_time(topo, [1, 2], 777.0, TransferModel.PIPELINED)
        assert saf == pytest.approx(pipe)

    def test_longer_path_costs_more(self, topo):
        short = path_transfer_time(topo, [1, 2], 1000.0)
        long = path_transfer_time(topo, [1, 2, 3, 4, 5], 1000.0)
        assert long > short
