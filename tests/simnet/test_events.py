"""Tests for the discrete-event kernel."""

import pytest

from repro.simnet.events import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_may_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(1.0, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, log.append, "dead")
        sim.schedule(2.0, log.append, "alive")
        handle.cancel()
        sim.run()
        assert log == ["alive"]

    def test_len_ignores_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert len(sim) == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek_time() == 2.0


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "in")
        sim.schedule(5.0, log.append, "out")
        sim.run(until=2.0)
        assert log == ["in"]
        assert sim.now == 2.0  # clock advanced to the bound
        sim.run()
        assert log == ["in", "out"]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), log.append, i)
        sim.run(max_events=2)
        assert log == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_count(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 3

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()
