"""Tests for the closed-form expectations (cross-checked by brute force)."""

import itertools
import math

import numpy as np
import pytest

from repro.analysis.theory import (
    expected_route_hops,
    first_and_tail_prob,
    tha_disclosure_prob,
    tunnel_corruption_prob,
    tunnel_failure_prob_current,
    tunnel_failure_prob_tap,
)


class TestCurrentTunnelFailure:
    def test_asymptotic_form(self):
        assert tunnel_failure_prob_current(0.2, 5) == pytest.approx(1 - 0.8**5)

    def test_zero_failure(self):
        assert tunnel_failure_prob_current(0.0, 5) == 0.0

    def test_total_failure(self):
        assert tunnel_failure_prob_current(1.0, 5) == 1.0

    def test_exact_vs_asymptotic_converge(self):
        exact = tunnel_failure_prob_current(0.2, 5, n_nodes=100_000)
        assert exact == pytest.approx(1 - 0.8**5, rel=1e-3)

    def test_exact_by_enumeration(self):
        """Brute-force: N=8 nodes, 2 failed, l=2 relays."""
        n, failed, l = 8, 2, 2
        total = 0
        bad = 0
        for relays in itertools.combinations(range(n), l):
            total += 1
            if any(r < failed for r in relays):
                bad += 1
        assert tunnel_failure_prob_current(failed / n, l, n_nodes=n) == pytest.approx(
            bad / total
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            tunnel_failure_prob_current(-0.1, 5)
        with pytest.raises(ValueError):
            tunnel_failure_prob_current(0.5, 0)


class TestTapTunnelFailure:
    def test_asymptotic_form(self):
        assert tunnel_failure_prob_tap(0.3, 5, 3) == pytest.approx(
            1 - (1 - 0.3**3) ** 5
        )

    def test_tap_beats_current_everywhere(self):
        for p in (0.1, 0.3, 0.5):
            for l in (3, 5):
                assert tunnel_failure_prob_tap(p, l, 3) < tunnel_failure_prob_current(p, l)

    def test_higher_k_more_tolerant(self):
        assert tunnel_failure_prob_tap(0.3, 5, 5) < tunnel_failure_prob_tap(0.3, 5, 3)

    def test_k1_matches_current(self):
        assert tunnel_failure_prob_tap(0.25, 4, 1) == pytest.approx(
            tunnel_failure_prob_current(0.25, 4)
        )

    def test_k_validation(self):
        with pytest.raises(ValueError):
            tunnel_failure_prob_tap(0.1, 5, 0)

    def test_exact_hypergeometric(self):
        """k nodes all failed, N=10, 4 failed: C(4,3)/C(10,3)."""
        hop_fail = math.comb(4, 3) / math.comb(10, 3)
        assert tunnel_failure_prob_tap(0.4, 1, 3, n_nodes=10) == pytest.approx(hop_fail)


class TestDisclosureAndCorruption:
    def test_disclosure_asymptotic(self):
        assert tha_disclosure_prob(0.1, 3) == pytest.approx(1 - 0.9**3)

    def test_disclosure_monotone_in_k(self):
        probs = [tha_disclosure_prob(0.1, k) for k in range(1, 8)]
        assert probs == sorted(probs)

    def test_corruption_is_disclosure_power(self):
        assert tunnel_corruption_prob(0.1, 5, 3) == pytest.approx(
            tha_disclosure_prob(0.1, 3) ** 5
        )

    def test_corruption_decreasing_in_length(self):
        probs = [tunnel_corruption_prob(0.1, l, 3) for l in range(1, 10)]
        assert probs == sorted(probs, reverse=True)

    def test_corruption_increasing_in_k(self):
        probs = [tunnel_corruption_prob(0.1, 5, k) for k in range(1, 8)]
        assert probs == sorted(probs)

    def test_zero_malicious(self):
        assert tha_disclosure_prob(0.0, 3) == 0.0
        assert tunnel_corruption_prob(0.0, 5, 3) == 0.0

    def test_exact_disclosure_enumeration(self):
        """N=10 nodes, 3 malicious, k=2: 1 - C(7,2)/C(10,2)."""
        want = 1 - math.comb(7, 2) / math.comb(10, 2)
        assert tha_disclosure_prob(0.3, 2, n_nodes=10) == pytest.approx(want)

    def test_monte_carlo_agreement(self):
        """Closed form vs simulation with exactly-m malicious draws."""
        rng = np.random.default_rng(5)
        n, k, p = 500, 3, 0.2
        m = round(p * n)
        hits = 0
        trials = 4000
        for _ in range(trials):
            malicious = rng.choice(n, size=m, replace=False)
            replicas = rng.choice(n, size=k, replace=False)
            if np.intersect1d(malicious, replicas).size:
                hits += 1
        expected = tha_disclosure_prob(p, k, n_nodes=n)
        assert hits / trials == pytest.approx(expected, abs=0.03)


class TestFirstAndTail:
    def test_squared_root_probability(self):
        assert first_and_tail_prob(0.1, 3) == pytest.approx(0.01)

    def test_exact_rounding(self):
        assert first_and_tail_prob(0.1, 3, n_nodes=1000) == pytest.approx(0.01)


class TestExpectedRouteHops:
    def test_log16(self):
        assert expected_route_hops(10_000) == pytest.approx(math.log(10_000, 16))

    def test_single_node(self):
        assert expected_route_hops(1) == 0.0

    def test_b_param(self):
        assert expected_route_hops(1024, b_bits=1) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_route_hops(0)
