"""Tests for the vectorised id-space model — including the critical
cross-validation against the object-level substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.idspace as idspace
from repro.analysis.idspace import (
    IdSpaceModel,
    merge_insert_positions,
    pack_ids,
    replica_table,
    replica_table_words,
    ring_distance_words,
    searchsorted_words,
    unpack_words,
)
from repro.util.ids import closest_ids, ring_distance

RING = 1 << 64
RING128 = 1 << 128

ids64 = st.integers(min_value=0, max_value=RING - 1)
ids128 = st.integers(min_value=0, max_value=RING128 - 1)


class TestReplicaTable:
    @given(
        pool=st.sets(ids64, min_size=1, max_size=30),
        keys=st.lists(ids64, min_size=1, max_size=10),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_reference(self, pool, keys, k):
        """The NumPy path must agree with the scalar reference —
        ids scaled onto the 128-bit ring (order/distance isomorphism)."""
        k = min(k, len(pool))
        sorted_ids = np.array(sorted(pool), dtype=np.uint64)
        table = replica_table(sorted_ids, np.array(keys, dtype=np.uint64), k)
        for row, key in zip(table, keys):
            got = [int(sorted_ids[i]) << 64 for i in row]
            want = closest_ids([p << 64 for p in pool], key << 64, k)
            assert got == want

    def test_closest_first_order(self):
        ids = np.array([10, 20, 30, 40], dtype=np.uint64)
        table = replica_table(ids, np.array([21], dtype=np.uint64), 3)
        assert list(ids[table[0]]) == [20, 30, 10]

    def test_wraparound(self):
        ids = np.array([5, RING - 5], dtype=np.uint64)
        table = replica_table(ids, np.array([RING - 1], dtype=np.uint64), 1)
        assert ids[table[0, 0]] == RING - 5

    def test_k_validation(self):
        ids = np.array([1, 2], dtype=np.uint64)
        keys = np.array([0], dtype=np.uint64)
        with pytest.raises(ValueError):
            replica_table(ids, keys, 0)
        with pytest.raises(ValueError):
            replica_table(ids, keys, 3)

    def test_small_population_path(self):
        # 2k >= n triggers the full-ranking branch
        ids = np.array([10, 20, 30], dtype=np.uint64)
        table = replica_table(ids, np.array([12], dtype=np.uint64), 2)
        assert list(ids[table[0]]) == [10, 20]

    def test_large_batch_consistency(self):
        rng = np.random.default_rng(0)
        ids = np.sort(IdSpaceModel.draw_unique_ids(500, rng))
        keys = IdSpaceModel.draw_unique_ids(200, rng)
        table = replica_table(ids, keys, 4)
        # spot-check 10 keys against the scalar reference
        for i in range(0, 200, 20):
            got = [int(x) for x in ids[table[i]]]
            want = [
                w >> 64
                for w in closest_ids([int(x) << 64 for x in ids], int(keys[i]) << 64, 4)
            ]
            assert got == want


class TestCrossValidationAgainstObjectModel:
    def test_same_replica_sets_as_replicated_store(self):
        """THE bridge test: the vectorised model and the object-level
        ReplicatedStore must compute identical replica sets when fed
        isomorphic ids (64-bit ids shifted onto the 128-bit ring)."""
        from repro.past.replication import ReplicatedStore
        from repro.pastry.network import PastryNetwork

        rng = np.random.default_rng(7)
        ids64 = IdSpaceModel.draw_unique_ids(60, rng)
        keys64 = IdSpaceModel.draw_unique_ids(25, rng)

        model = IdSpaceModel(ids64)
        net = PastryNetwork.build([int(i) << 64 for i in ids64])
        store = ReplicatedStore(net, replication_factor=3)

        table = model.replica_ids(keys64, 3)
        for key64, row in zip(keys64, table):
            object_level = store.replica_set(int(key64) << 64)
            assert [int(x) << 64 for x in row] == object_level

    def test_any_survivor_matches_object_semantics(self):
        from repro.pastry.network import PastryNetwork

        rng = np.random.default_rng(8)
        # sort so the failure mask aligns with model.ids
        ids64 = np.sort(IdSpaceModel.draw_unique_ids(50, rng))
        keys64 = IdSpaceModel.draw_unique_ids(20, rng)
        model = IdSpaceModel(ids64)

        failed = np.zeros(50, dtype=bool)
        failed[rng.choice(50, size=20, replace=False)] = True

        survived = model.any_survivor(keys64, 3, failed)

        # Object semantics: closest alive node after failure must be a
        # member of the original replica set iff any member survived.
        net = PastryNetwork.build([int(i) << 64 for i in ids64])
        original_sets = {
            int(key): [int(x) for x in row]
            for key, row in zip(keys64, model.replica_ids(keys64, 3))
        }
        for idx, flag in enumerate(failed):
            if flag:
                net.fail(int(ids64[idx]) << 64)
        for key64, ok in zip(keys64, survived):
            members_alive = [
                m for m in original_sets[int(key64)]
                if net.is_alive(m << 64)
            ]
            assert bool(ok) == bool(members_alive)
            if members_alive:
                assert net.closest_alive(int(key64) << 64) >> 64 in [
                    m for m in members_alive
                ]


class TestModelAttributes:
    def test_random_malicious_count(self):
        rng = np.random.default_rng(1)
        model = IdSpaceModel.random(1000, rng, malicious_fraction=0.1)
        assert model.malicious.sum() == 100
        assert model.size == 1000

    def test_ids_sorted_and_unique(self):
        rng = np.random.default_rng(2)
        model = IdSpaceModel.random(500, rng)
        assert np.all(np.diff(model.ids.astype(np.uint64)) > 0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            IdSpaceModel(np.array([1, 1, 2], dtype=np.uint64))

    def test_flag_alignment_enforced(self):
        with pytest.raises(ValueError):
            IdSpaceModel(
                np.array([1, 2], dtype=np.uint64),
                malicious=np.array([True]),
            )

    def test_flags_follow_sort(self):
        model = IdSpaceModel(
            np.array([30, 10, 20], dtype=np.uint64),
            malicious=np.array([True, False, False]),
        )
        assert list(model.ids) == [10, 20, 30]
        assert list(model.malicious) == [False, False, True]

    def test_any_malicious_holder(self):
        model = IdSpaceModel(
            np.array([10, 20, 30, 1000], dtype=np.uint64),
            malicious=np.array([False, True, False, False]),
        )
        keys = np.array([11, 999], dtype=np.uint64)
        out = model.any_malicious_holder(keys, 2)
        assert list(out) == [True, False]  # {10,20} vs {1000,30}


class TestChurnPrimitives:
    def test_remove_nodes(self):
        model = IdSpaceModel(np.array([10, 20, 30], dtype=np.uint64))
        model.remove_nodes([1])
        assert list(model.ids) == [10, 30]

    def test_add_nodes_keeps_sorted(self):
        model = IdSpaceModel(np.array([10, 30], dtype=np.uint64))
        model.add_nodes(np.array([20], dtype=np.uint64),
                        malicious=np.array([True]))
        assert list(model.ids) == [10, 20, 30]
        assert list(model.malicious) == [False, True, False]

    def test_add_duplicate_rejected(self):
        model = IdSpaceModel(np.array([10], dtype=np.uint64))
        with pytest.raises(ValueError):
            model.add_nodes(np.array([10], dtype=np.uint64))

    def test_benign_indices(self):
        model = IdSpaceModel(
            np.array([10, 20], dtype=np.uint64),
            malicious=np.array([True, False]),
        )
        assert list(model.benign_indices()) == [1]

    def test_churn_preserves_population(self):
        rng = np.random.default_rng(3)
        model = IdSpaceModel.random(200, rng, malicious_fraction=0.1)
        for _ in range(5):
            benign = model.benign_indices()
            model.remove_nodes(rng.choice(benign, size=10, replace=False))
            model.add_nodes(IdSpaceModel.draw_unique_ids(10, rng))
            assert model.size == 200
            assert model.malicious.sum() == 20  # malicious never leave


class TestMemoContentKeyed:
    """Regression: the replica memo must key on key *content*.

    The old token used ``hash(keys_arr.tobytes())`` — on a (forced)
    hash collision between two different key arrays, the memo silently
    returned the first array's table for the second.
    """

    def test_forced_hash_collision_returns_correct_tables(self, monkeypatch):
        # Shadow the builtin `hash` inside the module: every old-style
        # token now collides.  The content-keyed memo never calls it,
        # so both queries must still get their own (correct) tables.
        monkeypatch.setattr(idspace, "hash", lambda _data: 0, raising=False)
        model = IdSpaceModel(np.array([10, 20, 30, 1000], dtype=np.uint64))
        keys_a = np.array([11, 21], dtype=np.uint64)
        keys_b = np.array([999, 29], dtype=np.uint64)  # same len, same k
        table_a = model.replica_indices(keys_a, 2)
        table_b = model.replica_indices(keys_b, 2)
        assert list(model.ids[table_a[0]]) == [10, 20]
        assert list(model.ids[table_b[0]]) == [1000, 30]
        # and the memo still works: identical content hits the cache
        assert model.replica_indices(keys_a.copy(), 2) is table_a

    def test_memo_results_read_only(self):
        model = IdSpaceModel(np.array([10, 20, 30], dtype=np.uint64))
        table = model.replica_indices(np.array([11], dtype=np.uint64), 1)
        with pytest.raises(ValueError):
            table[0, 0] = 2


class TestSortOrderInvalidation:
    """Regression: reusing the constructor permutation after churn
    (the documented ``flags[model.sort_order]`` pattern) silently
    misaligned every flag; it must now raise."""

    def test_sort_order_valid_before_churn(self):
        model = IdSpaceModel(np.array([30, 10, 20], dtype=np.uint64))
        flags = np.array([True, False, False])
        assert list(flags[model.sort_order]) == [False, False, True]

    def test_stale_after_remove(self):
        model = IdSpaceModel(np.array([30, 10, 20], dtype=np.uint64))
        model.remove_nodes([0])
        with pytest.raises(RuntimeError, match="stale"):
            _ = model.sort_order

    def test_stale_after_add(self):
        model = IdSpaceModel(np.array([30, 10], dtype=np.uint64))
        model.add_nodes(np.array([20], dtype=np.uint64))
        with pytest.raises(RuntimeError, match="stale"):
            _ = model.sort_order

    def test_churn_then_reassign_pattern_raises(self):
        # The fig3 sweep idiom, applied after churn: must fail loudly
        # instead of producing misaligned malicious flags.
        rng = np.random.default_rng(5)
        model = IdSpaceModel.random(50, rng)
        model.remove_nodes([0, 1])
        flags = rng.random(48) < 0.2
        with pytest.raises(RuntimeError):
            model.malicious = flags[model.sort_order]


class _ScriptedRng:
    """Fake generator: hands out pre-scripted `integers` results."""

    def __init__(self, draws):
        self._draws = [np.asarray(d, dtype=np.uint64) for d in draws]

    def integers(self, low, high, size, dtype):
        out = self._draws.pop(0)
        assert len(out) == size, f"expected draw of {size}, scripted {len(out)}"
        return out


class TestDrawUniqueRetry:
    """Regression: the collision-retry path must redraw only the
    duplicates, preserving draw order — not return a sorted
    smallest-first prefix of the union."""

    def test_redraws_only_duplicates_in_place(self):
        rng = _ScriptedRng([
            [5, 5, 3, 7, 5],  # initial draw: dups at positions 1 and 4
            [5, 9],           # redraw for positions (1, 4): one still dup
            [11],             # final redraw for position 1
        ])
        out = IdSpaceModel.draw_unique_ids(5, rng)
        assert list(out) == [5, 11, 3, 7, 9]
        assert len(np.unique(out)) == 5

    def test_draw_order_preserved_without_collisions(self):
        rng = _ScriptedRng([[40, 10, 30, 20]])
        assert list(IdSpaceModel.draw_unique_ids(4, rng)) == [40, 10, 30, 20]

    def test_zero_count(self):
        rng = _ScriptedRng([[]])
        assert len(IdSpaceModel.draw_unique_ids(0, rng)) == 0

    def test_real_generator_unique(self):
        rng = np.random.default_rng(11)
        out = IdSpaceModel.draw_unique_ids(1000, rng)
        assert len(np.unique(out)) == 1000


class TestWindowedVsFullBranch:
    """Property test: the windowed branch (2k < n) must agree with the
    full-ranking branch at every wrap boundary — keys below the
    smallest id (pos == 0), above the largest (pos == n) and
    populations straddling 2k ≈ n."""

    @staticmethod
    def _full_rank_reference(sorted_ids, keys, k):
        # Force the full-ranking branch by ranking every node per key.
        n = len(sorted_ids)
        out = np.empty((len(keys), k), dtype=np.intp)
        for i, key in enumerate(keys):
            ranked = sorted(
                range(n),
                key=lambda j: (
                    min((int(sorted_ids[j]) - int(key)) % RING,
                        (int(key) - int(sorted_ids[j])) % RING),
                    int(sorted_ids[j]),
                ),
            )
            out[i] = ranked[:k]
        return out

    @given(
        pool=st.sets(ids64, min_size=3, max_size=40),
        k=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_windowed_matches_full_ranking(self, pool, k, data):
        sorted_ids = np.array(sorted(pool), dtype=np.uint64)
        n = len(sorted_ids)
        if 2 * k >= n:
            k = max(1, (n - 1) // 2)  # force the windowed branch
        lo, hi = int(sorted_ids[0]), int(sorted_ids[-1])
        boundary_keys = [
            0, RING - 1,                      # extremes: pos == 0 / n
            max(0, lo - 1), lo,               # around the smallest id
            hi, min(RING - 1, hi + 1),        # around the largest id
        ]
        boundary_keys.append(data.draw(ids64))
        keys = np.array(boundary_keys, dtype=np.uint64)
        got = replica_table(sorted_ids, keys, k)
        want = self._full_rank_reference(sorted_ids, keys, k)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("n,k", [(5, 2), (6, 2), (7, 3), (9, 4), (17, 8)])
    def test_2k_near_n_boundary(self, n, k):
        # 2k == n - 1: the largest population still on the windowed
        # branch; one node more flips to full ranking.  Both must agree.
        rng = np.random.default_rng(n * 31 + k)
        sorted_ids = np.sort(IdSpaceModel.draw_unique_ids(n, rng))
        keys = IdSpaceModel.draw_unique_ids(30, rng)
        got = replica_table(sorted_ids, keys, k)
        want = self._full_rank_reference(sorted_ids, keys, k)
        assert np.array_equal(got, want)


class TestWordKernels:
    """The exact 128-bit two-word kernels against Python-int references."""

    @given(values=st.lists(ids128, min_size=0, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip(self, values):
        hi, lo = pack_ids(values)
        assert unpack_words(hi, lo) == [int(v) for v in values]

    @given(
        pool=st.sets(ids128, min_size=1, max_size=30),
        keys=st.lists(ids128, min_size=1, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_searchsorted_words(self, pool, keys):
        ids = sorted(pool)
        hi, lo = pack_ids(ids)
        khi, klo = pack_ids(keys)
        got = searchsorted_words(hi, lo, khi, klo)
        import bisect
        want = [bisect.bisect_left(ids, key) for key in keys]
        assert list(got) == want

    @given(a=ids128, b=ids128)
    @settings(max_examples=200, deadline=None)
    def test_ring_distance_words(self, a, b):
        ahi, alo = pack_ids([a])
        bhi, blo = pack_ids([b])
        dhi, dlo = ring_distance_words(ahi, alo, bhi, blo)
        assert unpack_words(dhi, dlo)[0] == ring_distance(a, b)

    @given(
        pool=st.sets(ids128, min_size=1, max_size=30),
        keys=st.lists(ids128, min_size=1, max_size=8),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_replica_table_words_matches_closest_ids(self, pool, keys, k):
        k = min(k, len(pool))
        ids = sorted(pool)
        shi, slo = pack_ids(ids)
        khi, klo = pack_ids(keys)
        table = replica_table_words(shi, slo, khi, klo, k)
        for row, key in zip(table, keys):
            got = [ids[i] for i in row]
            assert got == closest_ids(ids, key, k)

    def test_replica_table_words_validation(self):
        hi, lo = pack_ids([1, 2])
        khi, klo = pack_ids([0])
        with pytest.raises(ValueError):
            replica_table_words(hi, lo, khi, klo, 0)
        with pytest.raises(ValueError):
            replica_table_words(hi, lo, khi, klo, 3)

    @given(
        existing=st.sets(st.integers(0, 999), min_size=0, max_size=40),
        fresh=st.sets(st.integers(1000, 1999), min_size=0, max_size=15),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_insert_positions_matches_np_insert(self, existing, fresh):
        arr = np.array(sorted(existing), dtype=np.int64)
        new = np.array(sorted(fresh), dtype=np.int64)
        at = np.searchsorted(arr, new)
        target, keep = merge_insert_positions(at, len(arr))
        merged = np.empty(len(arr) + len(new), dtype=np.int64)
        merged[keep] = arr
        merged[target] = new
        assert (merged == np.insert(arr, at, new)).all()
        # one plan serves aligned companion arrays
        companion = np.empty(len(arr) + len(new), dtype=bool)
        companion[keep] = True
        companion[target] = False
        assert companion.sum() == len(arr)
