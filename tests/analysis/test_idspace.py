"""Tests for the vectorised id-space model — including the critical
cross-validation against the object-level substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.idspace import IdSpaceModel, replica_table
from repro.util.ids import closest_ids

RING = 1 << 64

ids64 = st.integers(min_value=0, max_value=RING - 1)


class TestReplicaTable:
    @given(
        pool=st.sets(ids64, min_size=1, max_size=30),
        keys=st.lists(ids64, min_size=1, max_size=10),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_reference(self, pool, keys, k):
        """The NumPy path must agree with the scalar reference —
        ids scaled onto the 128-bit ring (order/distance isomorphism)."""
        k = min(k, len(pool))
        sorted_ids = np.array(sorted(pool), dtype=np.uint64)
        table = replica_table(sorted_ids, np.array(keys, dtype=np.uint64), k)
        for row, key in zip(table, keys):
            got = [int(sorted_ids[i]) << 64 for i in row]
            want = closest_ids([p << 64 for p in pool], key << 64, k)
            assert got == want

    def test_closest_first_order(self):
        ids = np.array([10, 20, 30, 40], dtype=np.uint64)
        table = replica_table(ids, np.array([21], dtype=np.uint64), 3)
        assert list(ids[table[0]]) == [20, 30, 10]

    def test_wraparound(self):
        ids = np.array([5, RING - 5], dtype=np.uint64)
        table = replica_table(ids, np.array([RING - 1], dtype=np.uint64), 1)
        assert ids[table[0, 0]] == RING - 5

    def test_k_validation(self):
        ids = np.array([1, 2], dtype=np.uint64)
        keys = np.array([0], dtype=np.uint64)
        with pytest.raises(ValueError):
            replica_table(ids, keys, 0)
        with pytest.raises(ValueError):
            replica_table(ids, keys, 3)

    def test_small_population_path(self):
        # 2k >= n triggers the full-ranking branch
        ids = np.array([10, 20, 30], dtype=np.uint64)
        table = replica_table(ids, np.array([12], dtype=np.uint64), 2)
        assert list(ids[table[0]]) == [10, 20]

    def test_large_batch_consistency(self):
        rng = np.random.default_rng(0)
        ids = np.sort(IdSpaceModel.draw_unique_ids(500, rng))
        keys = IdSpaceModel.draw_unique_ids(200, rng)
        table = replica_table(ids, keys, 4)
        # spot-check 10 keys against the scalar reference
        for i in range(0, 200, 20):
            got = [int(x) for x in ids[table[i]]]
            want = [
                w >> 64
                for w in closest_ids([int(x) << 64 for x in ids], int(keys[i]) << 64, 4)
            ]
            assert got == want


class TestCrossValidationAgainstObjectModel:
    def test_same_replica_sets_as_replicated_store(self):
        """THE bridge test: the vectorised model and the object-level
        ReplicatedStore must compute identical replica sets when fed
        isomorphic ids (64-bit ids shifted onto the 128-bit ring)."""
        from repro.past.replication import ReplicatedStore
        from repro.pastry.network import PastryNetwork

        rng = np.random.default_rng(7)
        ids64 = IdSpaceModel.draw_unique_ids(60, rng)
        keys64 = IdSpaceModel.draw_unique_ids(25, rng)

        model = IdSpaceModel(ids64)
        net = PastryNetwork.build([int(i) << 64 for i in ids64])
        store = ReplicatedStore(net, replication_factor=3)

        table = model.replica_ids(keys64, 3)
        for key64, row in zip(keys64, table):
            object_level = store.replica_set(int(key64) << 64)
            assert [int(x) << 64 for x in row] == object_level

    def test_any_survivor_matches_object_semantics(self):
        from repro.pastry.network import PastryNetwork

        rng = np.random.default_rng(8)
        # sort so the failure mask aligns with model.ids
        ids64 = np.sort(IdSpaceModel.draw_unique_ids(50, rng))
        keys64 = IdSpaceModel.draw_unique_ids(20, rng)
        model = IdSpaceModel(ids64)

        failed = np.zeros(50, dtype=bool)
        failed[rng.choice(50, size=20, replace=False)] = True

        survived = model.any_survivor(keys64, 3, failed)

        # Object semantics: closest alive node after failure must be a
        # member of the original replica set iff any member survived.
        net = PastryNetwork.build([int(i) << 64 for i in ids64])
        original_sets = {
            int(key): [int(x) for x in row]
            for key, row in zip(keys64, model.replica_ids(keys64, 3))
        }
        for idx, flag in enumerate(failed):
            if flag:
                net.fail(int(ids64[idx]) << 64)
        for key64, ok in zip(keys64, survived):
            members_alive = [
                m for m in original_sets[int(key64)]
                if net.is_alive(m << 64)
            ]
            assert bool(ok) == bool(members_alive)
            if members_alive:
                assert net.closest_alive(int(key64) << 64) >> 64 in [
                    m for m in members_alive
                ]


class TestModelAttributes:
    def test_random_malicious_count(self):
        rng = np.random.default_rng(1)
        model = IdSpaceModel.random(1000, rng, malicious_fraction=0.1)
        assert model.malicious.sum() == 100
        assert model.size == 1000

    def test_ids_sorted_and_unique(self):
        rng = np.random.default_rng(2)
        model = IdSpaceModel.random(500, rng)
        assert np.all(np.diff(model.ids.astype(np.uint64)) > 0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            IdSpaceModel(np.array([1, 1, 2], dtype=np.uint64))

    def test_flag_alignment_enforced(self):
        with pytest.raises(ValueError):
            IdSpaceModel(
                np.array([1, 2], dtype=np.uint64),
                malicious=np.array([True]),
            )

    def test_flags_follow_sort(self):
        model = IdSpaceModel(
            np.array([30, 10, 20], dtype=np.uint64),
            malicious=np.array([True, False, False]),
        )
        assert list(model.ids) == [10, 20, 30]
        assert list(model.malicious) == [False, False, True]

    def test_any_malicious_holder(self):
        model = IdSpaceModel(
            np.array([10, 20, 30, 1000], dtype=np.uint64),
            malicious=np.array([False, True, False, False]),
        )
        keys = np.array([11, 999], dtype=np.uint64)
        out = model.any_malicious_holder(keys, 2)
        assert list(out) == [True, False]  # {10,20} vs {1000,30}


class TestChurnPrimitives:
    def test_remove_nodes(self):
        model = IdSpaceModel(np.array([10, 20, 30], dtype=np.uint64))
        model.remove_nodes([1])
        assert list(model.ids) == [10, 30]

    def test_add_nodes_keeps_sorted(self):
        model = IdSpaceModel(np.array([10, 30], dtype=np.uint64))
        model.add_nodes(np.array([20], dtype=np.uint64),
                        malicious=np.array([True]))
        assert list(model.ids) == [10, 20, 30]
        assert list(model.malicious) == [False, True, False]

    def test_add_duplicate_rejected(self):
        model = IdSpaceModel(np.array([10], dtype=np.uint64))
        with pytest.raises(ValueError):
            model.add_nodes(np.array([10], dtype=np.uint64))

    def test_benign_indices(self):
        model = IdSpaceModel(
            np.array([10, 20], dtype=np.uint64),
            malicious=np.array([True, False]),
        )
        assert list(model.benign_indices()) == [1]

    def test_churn_preserves_population(self):
        rng = np.random.default_rng(3)
        model = IdSpaceModel.random(200, rng, malicious_fraction=0.1)
        for _ in range(5):
            benign = model.benign_indices()
            model.remove_nodes(rng.choice(benign, size=10, replace=False))
            model.add_nodes(IdSpaceModel.draw_unique_ids(10, rng))
            assert model.size == 200
            assert model.malicious.sum() == 20  # malicious never leave
