"""Tests for the anonymity metrics (§6)."""

import math

import numpy as np
import pytest

from repro.analysis.anonymity import (
    anonymity_set_entropy,
    degree_of_anonymity,
    predecessor_confidence,
    responder_guess_probability,
    uniform_with_suspect,
)


class TestResponderGuess:
    def test_paper_formula(self):
        assert responder_guess_probability(10_000) == pytest.approx(1 / 9999)

    def test_two_nodes(self):
        assert responder_guess_probability(2) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            responder_guess_probability(1)


class TestPredecessorConfidence:
    def test_uniform_over_positions(self):
        assert predecessor_confidence(5) == pytest.approx(0.2)

    def test_position_known(self):
        assert predecessor_confidence(5, position_known=True, position=1) == 1.0
        assert predecessor_confidence(5, position_known=True, position=3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            predecessor_confidence(0)
        with pytest.raises(ValueError):
            predecessor_confidence(5, position_known=True, position=9)

    def test_longer_tunnels_less_confidence(self):
        values = [predecessor_confidence(l) for l in range(1, 10)]
        assert values == sorted(values, reverse=True)


class TestEntropy:
    def test_uniform_max(self):
        probs = [0.25] * 4
        assert anonymity_set_entropy(probs) == pytest.approx(2.0)

    def test_certainty_zero(self):
        assert anonymity_set_entropy([1.0, 0.0, 0.0]) == 0.0

    def test_zero_entries_ignored(self):
        assert anonymity_set_entropy([0.5, 0.5, 0.0]) == pytest.approx(1.0)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            anonymity_set_entropy([0.5, 0.6])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            anonymity_set_entropy([1.5, -0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            anonymity_set_entropy([])


class TestDegreeOfAnonymity:
    def test_uniform_is_one(self):
        assert degree_of_anonymity([0.1] * 10) == pytest.approx(1.0)

    def test_identified_is_zero(self):
        assert degree_of_anonymity([1.0] + [0.0] * 9) == 0.0

    def test_single_candidate_zero(self):
        assert degree_of_anonymity([1.0]) == 0.0

    def test_monotone_in_suspicion(self):
        values = [
            degree_of_anonymity(uniform_with_suspect(100, s))
            for s in (0.01, 0.2, 0.5, 0.9)
        ]
        assert values == sorted(values, reverse=True)

    def test_tap_responder_view_nearly_anonymous(self):
        """From the responder's seat, TAP leaves a uniform distribution
        over N-1 nodes — degree of anonymity 1."""
        n = 1000
        probs = np.full(n - 1, 1.0 / (n - 1))
        assert degree_of_anonymity(probs) == pytest.approx(1.0)


class TestUniformWithSuspect:
    def test_shape_and_sum(self):
        dist = uniform_with_suspect(50, 0.3)
        assert len(dist) == 50
        assert dist.sum() == pytest.approx(1.0)
        assert dist[0] == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_with_suspect(1, 0.5)
        with pytest.raises(ValueError):
            uniform_with_suspect(10, 1.5)
