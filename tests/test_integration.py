"""Full-stack integration scenarios: the whole system living together.

Each test is a small story exercising many subsystems at once —
deployment, tunnels, applications, adversaries, churn, refresh —
the way a deployment would actually run.
"""

import random

import pytest

from repro.adversary.collusion import ColludingAdversary
from repro.core.refresh import RefreshPolicy
from repro.core.session import SessionServer, TapSession
from repro.core.system import TapSystem
from repro.extensions.anonmail import AnonymousMail
from repro.extensions.mutual_anonymity import MutualAnonymity
from repro.extensions.tunnel_probe import TunnelProber


class TestLifecycleScenario:
    def test_publish_retrieve_churn_refresh_retrieve(self):
        """A reader keeps retrieving a document across churn epochs,
        refreshing tunnels per policy, while an adversary watches."""
        system = TapSystem.bootstrap(num_nodes=250, seed=7001)
        adversary = ColludingAdversary(set(system.network.alive_ids[::8]))
        adversary.attach(system.store)

        document = b"samizdat " * 200
        fid = system.publish(document, name=b"doc")

        reader = system.tap_node(system.random_node_id("reader"))
        system.deploy_thas(reader, count=14)
        fwd = system.form_tunnel(reader, length=3)
        rpl = system.form_reply_tunnel(reader, length=3)
        policy = RefreshPolicy(interval=2.0)
        rng = random.Random(7002)
        protected = {reader.node_id, system.store.root(fid)}

        successes = 0
        now = 0.0
        for epoch in range(6):
            now += 1.0
            # churn: a couple of nodes leave and join each epoch
            for _ in range(3):
                candidates = [
                    n for n in system.network.alive_ids if n not in protected
                ]
                system.fail_node(candidates[rng.randrange(len(candidates))])
                new_id = rng.getrandbits(128)
                while new_id in system.network.nodes:
                    new_id = rng.getrandbits(128)
                system.join_node(new_id)

            def reform_reply(old):
                system.retire_tunnel(reader, old, delete=True)
                system.deploy_thas(reader, count=3)  # replace spent anchors
                return system.form_reply_tunnel(reader, length=3, now=now)

            if policy.due(fwd, now):
                fwd = policy.refresh(system, reader, fwd, now)
            if policy.due(rpl, now):
                rpl = reform_reply(rpl)

            result = system.retrieve(reader, fid, fwd, rpl)
            if result.success:
                assert result.content == document
                successes += 1
            else:
                fwd = policy.refresh(system, reader, fwd, now)
                rpl = reform_reply(rpl)

        assert successes >= 5
        assert system.store.verify_invariants() == []

    def test_session_mail_and_hidden_service_coexist(self):
        """Three applications share one overlay without interference."""
        system = TapSystem.bootstrap(num_nodes=250, seed=7003)

        # 1. a long-running session
        client = system.tap_node(system.random_node_id("client"))
        system.deploy_thas(client, count=12)
        server = SessionServer(system.random_node_id("server"),
                               handler=lambda b: b"s:" + b)
        session = TapSession(system, client, server, tunnel_length=2)

        # 2. anonymous mail
        mail = AnonymousMail(system)
        writer = system.tap_node(system.random_node_id("writer"))
        system.deploy_thas(writer, count=12)
        reader_id = system.random_node_id("reader")

        # 3. a hidden service
        mutual = MutualAnonymity(system)
        provider = system.tap_node(system.random_node_id("provider"))
        system.deploy_thas(provider, count=12)
        mutual.publish_service(provider, b"svc", handler=lambda b: b"h:" + b)

        # Interleave traffic.
        for i in range(3):
            assert session.request(f"q{i}".encode()) == f"s:q{i}".encode()

            sent = mail.send(
                writer, reader_id, f"m{i}".encode(),
                system.form_tunnel(writer, length=2),
                system.form_reply_tunnel(writer, length=2),
            )
            assert sent.delivered

            caller = system.tap_node(system.random_node_id(("caller", i)))
            system.deploy_thas(caller, count=6)
            response, trace = mutual.call(
                caller, b"svc", f"c{i}".encode(),
                system.form_tunnel(caller, length=2),
                system.form_reply_tunnel(caller, length=2),
            )
            assert trace.success and response == f"h:c{i}".encode()

        # Reply to all mail after the fact.
        for envelope in mail.inbox(reader_id):
            assert mail.reply(reader_id, envelope, b"re:" + envelope.body).success

        assert session.stats.availability == 1.0
        assert system.store.verify_invariants() == []

    def test_probe_driven_maintenance_under_catastrophe(self):
        """Probes catch anchors lost to simultaneous failures; refresh
        restores service; the store stays consistent throughout."""
        system = TapSystem.bootstrap(num_nodes=250, seed=7004)
        owner = system.tap_node(system.random_node_id("owner"))
        system.deploy_thas(owner, count=18)
        tunnels = [system.form_tunnel(owner, length=3) for _ in range(3)]
        prober = TunnelProber(system)

        # Catastrophe: wipe out one tunnel's middle anchor entirely.
        victim = tunnels[1]
        holders = list(system.store.holders(victim.hops[1].hop_id))
        system.fail_nodes(holders, repair_after=False)

        audit = prober.audit(owner, tunnels)
        assert audit["healthy"] == 2
        assert audit["needs_refresh"] == [victim]

        policy = RefreshPolicy(interval=1.0)
        replacement = policy.refresh(system, owner, victim, now=1.0)
        tunnels[1] = replacement

        audit2 = prober.audit(owner, tunnels)
        assert audit2["healthy"] == 3
        for tunnel in tunnels:
            assert system.send(owner, tunnel, 42, b"ping").success
