"""Tests for the Pastry leaf set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pastry.leafset import LeafSet
from repro.util.ids import ID_SPACE, ring_distance

ids_st = st.integers(min_value=0, max_value=ID_SPACE - 1)


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LeafSet(0, capacity=3)  # odd
        with pytest.raises(ValueError):
            LeafSet(0, capacity=0)

    def test_owner_never_member(self):
        ls = LeafSet(100)
        assert not ls.add(100)
        assert 100 not in ls

    def test_add_and_contains(self):
        ls = LeafSet(100)
        assert ls.add(200)
        assert 200 in ls and len(ls) == 1

    def test_remove(self):
        ls = LeafSet(100)
        ls.add(200)
        ls.remove(200)
        assert 200 not in ls

    def test_remove_missing_is_noop(self):
        LeafSet(100).remove(999)


class TestHalves:
    def test_cw_and_ccw_split(self):
        ls = LeafSet(1000, capacity=4)
        ls.add_all([1001, 1002, 999, 998])
        assert ls.cw_members() == [1001, 1002]
        assert ls.ccw_members() == [999, 998]

    def test_halves_bounded(self):
        ls = LeafSet(1000, capacity=4)
        ls.add_all(range(1001, 1020))  # all clockwise
        assert len(ls.cw_members()) == 2
        # far clockwise nodes count as counterclockwise around the ring
        assert len(ls) <= 4

    def test_eviction_keeps_nearest(self):
        ls = LeafSet(0, capacity=2)
        ls.add(10)
        ls.add(5)  # nearer clockwise: evicts 10 from the cw half
        assert 5 in ls.cw_members()
        assert ls.cw_members()[0] == 5

    def test_wraparound_ccw(self):
        ls = LeafSet(5, capacity=4)
        ls.add_all([ID_SPACE - 1, ID_SPACE - 2])
        assert ls.ccw_members() == [ID_SPACE - 1, ID_SPACE - 2]


class TestCovers:
    def test_non_full_covers_everything(self):
        ls = LeafSet(0, capacity=8)
        ls.add_all([1, 2, 3])
        assert ls.covers(ID_SPACE // 2)

    def test_full_covers_only_arc(self):
        ls = LeafSet(1000, capacity=4)
        ls.add_all([900, 950, 1050, 1100])
        assert ls.is_full()
        assert ls.covers(1000)
        assert ls.covers(925)
        assert ls.covers(1075)
        assert not ls.covers(ID_SPACE // 2)

    def test_covers_boundary_members(self):
        ls = LeafSet(1000, capacity=4)
        ls.add_all([900, 950, 1050, 1100])
        assert ls.covers(900) and ls.covers(1100)


class TestClosest:
    def test_includes_owner_by_default(self):
        ls = LeafSet(1000, capacity=4)
        ls.add_all([900, 1100])
        assert ls.closest(1001) == 1000

    def test_exclude_owner(self):
        ls = LeafSet(1000, capacity=4)
        ls.add_all([900, 1100])
        assert ls.closest(1001, include_owner=False) == 1100

    def test_empty_without_owner_rejected(self):
        with pytest.raises(ValueError):
            LeafSet(1).closest(5, include_owner=False)

    @given(
        owner=ids_st,
        members=st.sets(ids_st, min_size=1, max_size=12),
        key=ids_st,
    )
    @settings(max_examples=100)
    def test_closest_is_truly_closest(self, owner, members, key):
        ls = LeafSet(owner, capacity=16)
        ls.add_all(members)
        pool = ls.members | {owner}
        best = ls.closest(key)
        assert all(
            (ring_distance(best, key), best) <= (ring_distance(m, key), m)
            for m in pool
        )


class TestTrimInvariant:
    @given(
        owner=ids_st,
        members=st.sets(ids_st, min_size=0, max_size=40),
    )
    @settings(max_examples=100)
    def test_members_always_in_a_half(self, owner, members):
        """Every retained member belongs to the bounded CW or CCW half."""
        ls = LeafSet(owner, capacity=8)
        ls.add_all(members)
        halves = set(ls.cw_members()) | set(ls.ccw_members())
        assert ls.members == halves
        assert len(ls.cw_members()) <= 4
        assert len(ls.ccw_members()) <= 4
