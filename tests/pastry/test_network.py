"""Tests for the Pastry overlay: build invariants, routing, churn."""

import math
import random
import statistics

import pytest

from repro.pastry.network import PastryNetwork, RoutingError
from repro.util.ids import closest_ids, random_id, ring_distance
from tests.conftest import build_network


class TestBuildInvariants:
    def test_all_nodes_present_and_alive(self, network200):
        assert network200.size == 200
        assert all(n.alive for n in network200)

    def test_alive_ids_sorted(self, network200):
        ids = network200.alive_ids
        assert ids == sorted(ids)

    def test_leaf_sets_are_ring_neighbours(self, network200):
        """Omniscient build must produce the exact |L| closest-per-side."""
        ids = network200.alive_ids
        n = len(ids)
        for idx in (0, 57, 199):
            node = network200.nodes[ids[idx]]
            expect_cw = [ids[(idx + off) % n] for off in range(1, 9)]
            expect_ccw = [ids[(idx - off) % n] for off in range(1, 9)]
            assert node.leaf_set.cw_members() == expect_cw
            assert node.leaf_set.ccw_members() == expect_ccw

    def test_routing_table_cells_valid(self, network200):
        """Every entry sits in the cell its prefix dictates and no cell
        that could be filled is empty (build completeness)."""
        ids = set(network200.alive_ids)
        sample = list(network200.alive_ids)[::20]
        for nid in sample:
            node = network200.nodes[nid]
            for entry in node.routing_table.entries:
                row, col = node.routing_table.cell_for(entry)
                assert node.routing_table.lookup(row, col) == entry
                assert entry in ids

    def test_build_completeness_row0(self, network200):
        """Row 0 must have an entry for every first digit present in
        the network (other than the owner's)."""
        ids = network200.alive_ids
        digits_present = {i >> 124 for i in ids}
        node = network200.nodes[ids[0]]
        own_digit = ids[0] >> 124
        for digit in digits_present - {own_digit}:
            assert node.routing_table.lookup(0, digit) is not None

    def test_empty_build(self):
        net = PastryNetwork.build([])
        assert net.size == 0

    def test_single_node(self):
        net = PastryNetwork.build([42])
        res = net.route(42, 777)
        assert res.success and res.destination == 42 and res.hops == 0


class TestRouting:
    def test_reaches_numerically_closest(self, network200):
        rng = random.Random(3)
        ids = network200.alive_ids
        for _ in range(100):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = network200.route(src, key)
            assert res.success
            assert res.destination == network200.closest_alive(key)
            assert res.path[0] == src

    def test_route_to_own_id_is_local(self, network200):
        nid = network200.alive_ids[5]
        res = network200.route(nid, nid)
        assert res.success and res.hops == 0

    def test_hop_count_scales_logarithmically(self):
        """Mean hops ≈ log_16 N (the paper's performance premise)."""
        rng = random.Random(11)
        for n in (100, 400):
            net = build_network(n, seed=n)
            ids = net.alive_ids
            hops = []
            for _ in range(150):
                src = ids[rng.randrange(len(ids))]
                res = net.route(src, random_id(rng))
                assert res.success
                hops.append(res.hops)
            mean = statistics.mean(hops)
            expected = math.log(n, 16)
            assert expected - 1.0 < mean < expected + 1.5

    def test_dead_source_rejected(self, small_network):
        victim = small_network.alive_ids[0]
        small_network.fail(victim)
        with pytest.raises(RoutingError):
            small_network.route(victim, 123)

    def test_path_nodes_alive(self, network200):
        res = network200.route(network200.alive_ids[0], random_id(random.Random(5)))
        assert all(network200.is_alive(nid) for nid in res.path)


class TestReplicaOracle:
    def test_closest_alive_matches_reference(self, network200):
        rng = random.Random(17)
        for _ in range(50):
            key = random_id(rng)
            assert network200.closest_alive(key) == closest_ids(
                network200.alive_ids, key, 1
            )[0]

    def test_replica_candidates_match_reference(self, network200):
        rng = random.Random(19)
        for _ in range(30):
            key = random_id(rng)
            assert network200.replica_candidates(key, 5) == closest_ids(
                network200.alive_ids, key, 5
            )

    def test_candidates_capped_at_population(self):
        net = PastryNetwork.build([1, 2, 3])
        assert len(net.replica_candidates(0, 10)) == 3

    def test_empty_network_rejected(self):
        net = PastryNetwork.build([])
        with pytest.raises(RoutingError):
            net.closest_alive(1)


class TestFailures:
    def test_fail_removes_from_alive(self, small_network):
        victim = small_network.alive_ids[10]
        small_network.fail(victim)
        assert victim not in small_network.alive_ids
        assert not small_network.is_alive(victim)

    def test_routing_survives_failures(self, small_network):
        """Routing must still reach the closest *alive* node after a
        third of the overlay crashes (discover-and-reroute)."""
        rng = random.Random(23)
        victims = rng.sample(small_network.alive_ids, 20)
        for v in victims:
            small_network.fail(v)
        ids = small_network.alive_ids
        for _ in range(50):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = small_network.route(src, key)
            assert res.success
            assert res.destination == small_network.closest_alive(key)

    def test_leafset_repair_after_failure(self, small_network):
        ids = small_network.alive_ids
        victim = ids[5]
        neighbour = ids[4]
        small_network.fail(victim)
        node = small_network.nodes[neighbour]
        assert victim not in node.leaf_set
        # refilled to full halves (population permitting)
        assert len(node.leaf_set.cw_members()) == small_network.leaf_set_size // 2

    def test_fail_twice_is_noop(self, small_network):
        victim = small_network.alive_ids[0]
        small_network.fail(victim)
        size = small_network.size
        small_network.fail(victim)
        assert small_network.size == size

    def test_revive(self, small_network):
        victim = small_network.alive_ids[0]
        small_network.fail(victim)
        small_network.revive(victim)
        assert small_network.is_alive(victim)


class TestJoinProtocol:
    def test_join_reaches_routable_state(self, small_network):
        rng = random.Random(31)
        new_id = random_id(rng)
        small_network.join(new_id)
        assert small_network.is_alive(new_id)
        # Newcomer can route...
        res = small_network.route(new_id, random_id(rng))
        assert res.success
        # ...and is found by others.
        res2 = small_network.route(small_network.alive_ids[0], new_id)
        assert res2.success and res2.destination == new_id

    def test_join_leafset_correct(self, small_network):
        rng = random.Random(37)
        new_id = random_id(rng)
        node = small_network.join(new_id)
        ids = small_network.alive_ids
        idx = ids.index(new_id)
        n = len(ids)
        expect_cw = [ids[(idx + off) % n] for off in range(1, 9)]
        assert node.leaf_set.cw_members() == expect_cw

    def test_join_duplicate_rejected(self, small_network):
        existing = small_network.alive_ids[0]
        with pytest.raises(ValueError):
            small_network.join(existing)

    def test_join_into_empty(self):
        net = PastryNetwork()
        net.join(99)
        assert net.alive_ids == [99]

    def test_many_joins_keep_routing_exact(self, small_network):
        rng = random.Random(41)
        for _ in range(15):
            small_network.join(random_id(rng))
        ids = small_network.alive_ids
        for _ in range(40):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = small_network.route(src, key)
            assert res.success
            assert res.destination == small_network.closest_alive(key)
