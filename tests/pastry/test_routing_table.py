"""Tests for the Pastry prefix routing table."""

import pytest

from repro.pastry.routing_table import RoutingTable
from repro.util.ids import ID_BITS, id_digit, shared_prefix_digits


def _id_with_digits(*digits: int, b: int = 4) -> int:
    """Build an id from leading digits (rest zero)."""
    value = 0
    for d in digits:
        value = (value << b) | d
    return value << (ID_BITS - b * len(digits))


OWNER = _id_with_digits(0xA, 0xB, 0xC)


class TestCellAssignment:
    def test_self_has_no_cell(self):
        rt = RoutingTable(OWNER)
        assert rt.cell_for(OWNER) is None
        assert not rt.add(OWNER)

    def test_row_is_shared_prefix_length(self):
        rt = RoutingTable(OWNER)
        other = _id_with_digits(0xA, 0xB, 0xD)  # shares 2 digits
        row, col = rt.cell_for(other)
        assert row == 2 and col == 0xD

    def test_row_zero_for_no_shared_prefix(self):
        rt = RoutingTable(OWNER)
        other = _id_with_digits(0x1)
        row, col = rt.cell_for(other)
        assert row == 0 and col == 0x1

    def test_b_must_divide_id_bits(self):
        with pytest.raises(ValueError):
            RoutingTable(OWNER, b_bits=5)

    def test_b2_dimensions(self):
        rt = RoutingTable(OWNER, b_bits=2)
        assert rt.rows == 64 and rt.cols == 4


class TestAddRemove:
    def test_add_and_lookup(self):
        rt = RoutingTable(OWNER)
        other = _id_with_digits(0x1)
        assert rt.add(other)
        assert rt.lookup(0, 0x1) == other
        assert other in rt

    def test_incumbent_kept_by_default(self):
        rt = RoutingTable(OWNER)
        first = _id_with_digits(0x1, 0x0)
        second = _id_with_digits(0x1, 0x5)
        rt.add(first)
        assert not rt.add(second)  # same cell (row 0, col 1)
        assert rt.lookup(0, 0x1) == first

    def test_replace_evicts(self):
        rt = RoutingTable(OWNER)
        first = _id_with_digits(0x1, 0x0)
        second = _id_with_digits(0x1, 0x5)
        rt.add(first)
        assert rt.add(second, replace=True)
        assert rt.lookup(0, 0x1) == second
        assert first not in rt

    def test_re_add_same_node_true(self):
        rt = RoutingTable(OWNER)
        other = _id_with_digits(0x1)
        rt.add(other)
        assert rt.add(other)

    def test_remove(self):
        rt = RoutingTable(OWNER)
        other = _id_with_digits(0x1)
        rt.add(other)
        assert rt.remove(other)
        assert rt.lookup(0, 0x1) is None
        assert not rt.remove(other)

    def test_len_counts_cells(self):
        rt = RoutingTable(OWNER)
        rt.add(_id_with_digits(0x1))
        rt.add(_id_with_digits(0x2))
        assert len(rt) == 2


class TestEntryForKey:
    def test_matches_divergent_digit(self):
        rt = RoutingTable(OWNER)
        candidate = _id_with_digits(0xA, 0x7)  # row 1, col 7
        rt.add(candidate)
        key = _id_with_digits(0xA, 0x7, 0xF)
        assert rt.entry_for_key(key) == candidate

    def test_missing_cell_none(self):
        rt = RoutingTable(OWNER)
        assert rt.entry_for_key(_id_with_digits(0x3)) is None

    def test_own_id_none(self):
        rt = RoutingTable(OWNER)
        assert rt.entry_for_key(OWNER) is None

    def test_entry_shares_longer_prefix_with_key(self):
        """The Pastry progress property: a routing-table hop increases
        the shared prefix with the key."""
        rt = RoutingTable(OWNER)
        candidate = _id_with_digits(0xA, 0x7)
        rt.add(candidate)
        key = _id_with_digits(0xA, 0x7, 0x1)
        entry = rt.entry_for_key(key)
        assert shared_prefix_digits(entry, key) > shared_prefix_digits(OWNER, key)


class TestRowEntries:
    def test_row_listing(self):
        rt = RoutingTable(OWNER)
        a = _id_with_digits(0x1)
        b = _id_with_digits(0x2)
        deep = _id_with_digits(0xA, 0x5)
        for node in (a, b, deep):
            rt.add(node)
        row0 = rt.row_entries(0)
        assert row0 == {0x1: a, 0x2: b}
        assert rt.row_entries(1) == {0x5: deep}

    def test_entries_set(self):
        rt = RoutingTable(OWNER)
        a = _id_with_digits(0x1)
        rt.add(a)
        assert rt.entries == {a}

    def test_cell_digit_consistency(self):
        rt = RoutingTable(OWNER)
        node = _id_with_digits(0xA, 0xB, 0x1)
        rt.add(node)
        (row, col), = [rt.cell_for(node)]
        assert id_digit(node, row) == col
