"""Tests for proximity neighbour selection (PNS) builds."""

import random
import statistics

import pytest

from repro.pastry.network import PastryNetwork
from repro.simnet.topology import Topology
from repro.util.ids import random_id


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(3)
    ids = [rng.getrandbits(128) for _ in range(400)]
    topo = Topology(seed=4)
    plain = PastryNetwork.build(ids)
    pns = PastryNetwork.build(ids, proximity=topo.latency)
    return ids, topo, plain, pns


class TestCorrectness:
    def test_routing_still_exact(self, setup):
        _, _, _, pns = setup
        rng = random.Random(5)
        ids = pns.alive_ids
        for _ in range(80):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = pns.route(src, key)
            assert res.success
            assert res.destination == pns.closest_alive(key)

    def test_entries_occupy_valid_cells(self, setup):
        _, _, _, pns = setup
        for nid in pns.alive_ids[::40]:
            node = pns.nodes[nid]
            for entry in node.routing_table.entries:
                row, col = node.routing_table.cell_for(entry)
                assert node.routing_table.lookup(row, col) == entry

    def test_leaf_sets_unaffected(self, setup):
        """PNS only changes routing-table fill; leaf sets are ring
        neighbours by definition."""
        _, _, plain, pns = setup
        for nid in plain.alive_ids[::40]:
            assert (
                plain.nodes[nid].leaf_set.members
                == pns.nodes[nid].leaf_set.members
            )


class TestLocality:
    def test_entries_are_closer_on_average(self, setup):
        _, topo, plain, pns = setup
        def mean_entry_latency(net):
            vals = []
            for nid in net.alive_ids[::10]:
                for entry in net.nodes[nid].routing_table.entries:
                    vals.append(topo.latency(nid, entry))
            return statistics.mean(vals)

        assert mean_entry_latency(pns) < 0.8 * mean_entry_latency(plain)

    def test_routes_have_lower_propagation(self, setup):
        _, topo, plain, pns = setup
        rng = random.Random(6)
        def mean_route_latency(net):
            r = random.Random(7)
            vals = []
            for _ in range(100):
                src = net.alive_ids[r.randrange(net.size)]
                res = net.route(src, random_id(r))
                vals.append(topo.path_latency(res.path))
            return statistics.mean(vals)

        assert mean_route_latency(pns) < mean_route_latency(plain)
        del rng

    def test_sample_cap_respected(self):
        """A tiny proximity_sample still yields a correct overlay."""
        rng = random.Random(8)
        ids = [rng.getrandbits(128) for _ in range(150)]
        topo = Topology(seed=9)
        net = PastryNetwork.build(ids, proximity=topo.latency, proximity_sample=2)
        for _ in range(40):
            src = net.alive_ids[rng.randrange(net.size)]
            key = random_id(rng)
            res = net.route(src, key)
            assert res.success and res.destination == net.closest_alive(key)
