"""Parameter-generality tests: Pastry with non-default b and |L|.

The paper quotes ``log_{2^b} N`` routing "with a typical value of 4";
the implementation must stay correct for other protocol parameters
too (FreePastry supports b in {1, 2, 4}).
"""

import math
import random
import statistics

import pytest

from repro.core.system import TapSystem
from repro.pastry.network import PastryNetwork
from repro.util.ids import random_id


def _build(n, seed, **kwargs):
    rng = random.Random(seed)
    ids = set()
    while len(ids) < n:
        ids.add(rng.getrandbits(128))
    return PastryNetwork.build(ids, **kwargs)


class TestAlternativeDigitSizes:
    @pytest.mark.parametrize("b_bits", [1, 2, 8])
    def test_routing_exact_for_any_b(self, b_bits):
        net = _build(150, seed=b_bits, b_bits=b_bits)
        rng = random.Random(1000 + b_bits)
        ids = net.alive_ids
        for _ in range(60):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = net.route(src, key)
            assert res.success
            assert res.destination == net.closest_alive(key)

    def test_smaller_b_means_more_hops(self):
        """Hop counts grow as b shrinks (each hop fixes fewer digits).

        Note: b=1 hops land well under log2(N) because an entry chosen
        for one divergent bit matches further bits by chance (~1 extra
        expected), halving the naive bound — so we assert the ordering
        and a loose floor, not the textbook logarithm.
        """
        rng = random.Random(7)
        means = {}
        for b_bits in (1, 4):
            net = _build(300, seed=50, b_bits=b_bits)
            ids = net.alive_ids
            hops = []
            for _ in range(120):
                src = ids[rng.randrange(len(ids))]
                res = net.route(src, random_id(rng))
                hops.append(res.hops)
            means[b_bits] = statistics.mean(hops)
        assert means[1] > 1.3 * means[4]
        assert means[4] == pytest.approx(math.log(300, 16), rel=0.5)

    def test_invalid_b_rejected(self):
        with pytest.raises(ValueError):
            _build(10, seed=1, b_bits=3)  # must divide 128


class TestAlternativeLeafSetSizes:
    @pytest.mark.parametrize("leaf_set_size", [4, 8, 32])
    def test_routing_exact_for_any_leafset(self, leaf_set_size):
        net = _build(150, seed=leaf_set_size, leaf_set_size=leaf_set_size)
        rng = random.Random(2000 + leaf_set_size)
        ids = net.alive_ids
        for _ in range(60):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = net.route(src, key)
            assert res.success
            assert res.destination == net.closest_alive(key)

    def test_failures_survivable_with_small_leafset(self):
        net = _build(120, seed=9, leaf_set_size=4)
        rng = random.Random(3000)
        for victim in rng.sample(net.alive_ids, 25):
            net.fail(victim)
        ids = net.alive_ids
        for _ in range(40):
            src = ids[rng.randrange(len(ids))]
            key = random_id(rng)
            res = net.route(src, key)
            assert res.success
            assert res.destination == net.closest_alive(key)


class TestTapOnAlternativeParameters:
    def test_full_tap_stack_on_b2(self):
        """The entire TAP pipeline works over a base-4-digit overlay."""
        system = TapSystem.bootstrap(num_nodes=120, seed=61, b_bits=2,
                                     replication_factor=3)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=8)
        fid = system.publish(b"content", name=b"f")
        result = system.retrieve(
            alice, fid,
            system.form_tunnel(alice, length=3),
            system.form_reply_tunnel(alice, length=3),
        )
        assert result.success, result.failure_reason
        assert result.content == b"content"

    def test_full_tap_stack_on_k5(self):
        system = TapSystem.bootstrap(num_nodes=120, seed=62,
                                     replication_factor=5)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=6)
        tunnel = system.form_tunnel(alice, length=3)
        # k=5 tolerates four replica deaths on a hop
        victim_hop = tunnel.hops[0]
        holders = list(system.store.holders(victim_hop.hop_id))
        assert len(holders) == 5
        system.fail_nodes(holders[:4], repair_after=False)
        trace = system.send(alice, tunnel, 42, b"x")
        assert trace.success
