"""Tests for the per-node Pastry forwarding rule."""

import random

from repro.pastry.node import PastryNode, ip_for_id
from repro.util.ids import ID_BITS, random_id, ring_distance, shared_prefix_digits


def _id_with_digits(*digits: int) -> int:
    value = 0
    for d in digits:
        value = (value << 4) | d
    return value << (ID_BITS - 4 * len(digits))


class TestIpForId:
    def test_deterministic(self):
        assert ip_for_id(123) == ip_for_id(123)

    def test_valid_ipv4_shape(self):
        octets = ip_for_id(random_id(random.Random(1))).split(".")
        assert len(octets) == 4
        assert all(1 <= int(o) <= 254 for o in octets)

    def test_different_ids_usually_differ(self):
        rng = random.Random(2)
        ips = {ip_for_id(random_id(rng)) for _ in range(100)}
        assert len(ips) > 95


class TestNextHop:
    def test_leafset_delivery_to_self(self):
        node = PastryNode(_id_with_digits(0x8))
        # alone: leaf set empty and not full -> covers all -> self
        assert node.next_hop(12345) == node.node_id

    def test_leafset_delivery_to_closest_leaf(self):
        node = PastryNode(1000)
        node.learn([900, 1100])
        # non-full leaf set covers everything; 1090 closest to 1100
        assert node.next_hop(1090) == 1100

    def test_routing_table_hop_preferred_outside_leafset(self):
        owner = _id_with_digits(0x1)
        node = PastryNode(owner, leaf_set_size=2)
        near = [owner + 1, owner - 1]
        far = _id_with_digits(0x9, 0x9)
        node.learn(near + [far])
        key = _id_with_digits(0x9, 0x3)
        nxt = node.next_hop(key)
        # must move toward the key (longer prefix or closer), not to a leaf
        assert shared_prefix_digits(nxt, key) >= shared_prefix_digits(owner, key)
        assert nxt == far

    def test_exclude_forces_alternative(self):
        node = PastryNode(1000)
        node.learn([900, 1100])
        first = node.next_hop(1090)
        second = node.next_hop(1090, exclude={first})
        assert second != first

    def test_exclude_all_leaves_falls_back(self):
        node = PastryNode(1000)
        node.learn([1100])
        # excluding everything known (and self covered by pool check)
        nxt = node.next_hop(1090, exclude={1100, 1000})
        # rare-case scan: no known node closer -> deliver locally
        assert nxt == 1000

    def test_rare_case_makes_progress(self):
        """Rule 3: chosen node shares >= prefix and is strictly closer."""
        owner = _id_with_digits(0x1, 0x0)
        node = PastryNode(owner, leaf_set_size=2)
        key = _id_with_digits(0x1, 0xF)
        closer = _id_with_digits(0x1, 0xA)
        node.leaf_set.add(owner + 1)  # useless leaf
        node.routing_table._cells[(99, 0)] = closer  # bypass cell logic
        node.routing_table._reverse[closer] = (99, 0)
        nxt = node.next_hop(key, exclude={owner + 1})
        if nxt != owner:
            assert ring_distance(nxt, key) < ring_distance(owner, key)


class TestLearnForget:
    def test_learn_populates_both_structures(self):
        node = PastryNode(1000)
        node.learn([2000])
        assert 2000 in node.leaf_set
        assert 2000 in node.routing_table

    def test_learn_skips_self(self):
        node = PastryNode(1000)
        node.learn([1000])
        assert len(node.leaf_set) == 0

    def test_forget_clears_both(self):
        node = PastryNode(1000)
        node.learn([2000])
        node.forget(2000)
        assert 2000 not in node.leaf_set
        assert 2000 not in node.routing_table

    def test_known_nodes_union(self):
        node = PastryNode(1000)
        node.learn([2000, 3000])
        assert node.known_nodes() == {2000, 3000}
