"""Tests for the deterministic fault injectors."""

import pytest

from repro.faults.injectors import (
    BYZANTINE_BEHAVIORS,
    ByzantineSpec,
    MessageFaultSpec,
    SimNetFaultInjector,
    SyncFaultInjector,
)
from repro.obs import EventTrace
from repro.util.rng import SeedSequenceFactory


class TestSpecs:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            MessageFaultSpec(drop=1.5)
        with pytest.raises(ValueError):
            MessageFaultSpec(corrupt=-0.1)
        with pytest.raises(ValueError):
            MessageFaultSpec(delay_s=-1.0)

    def test_any(self):
        assert not MessageFaultSpec().any()
        assert MessageFaultSpec(drop=0.1).any()
        assert MessageFaultSpec(reorder=0.1).any()

    def test_byzantine_validation(self):
        with pytest.raises(ValueError):
            ByzantineSpec(fraction=2.0)
        with pytest.raises(ValueError):
            ByzantineSpec(fraction=0.1, behaviors=("eat-the-onion",))
        with pytest.raises(ValueError):
            ByzantineSpec(fraction=0.1, behaviors=())


class TestSyncInjector:
    def _injector(self, seed=0, **spec_kwargs):
        return SyncFaultInjector(
            MessageFaultSpec(**spec_kwargs),
            seeds=SeedSequenceFactory(seed).spawn("t"),
        )

    def test_draw_is_deterministic(self):
        a = self._injector(drop=0.3, corrupt=0.2)
        b = self._injector(drop=0.3, corrupt=0.2)
        fates_a = [a.draw_message("forward", 4) for _ in range(50)]
        fates_b = [b.draw_message("forward", 4) for _ in range(50)]
        assert [
            (f.drop_at, f.corrupt_at) if f else None for f in fates_a
        ] == [
            (f.drop_at, f.corrupt_at) if f else None for f in fates_b
        ]
        assert any(f is not None for f in fates_a)

    def test_clean_spec_draws_nothing(self):
        inj = self._injector()
        assert inj.draw_message("forward", 4) is None
        assert inj.total_injected == 0

    def test_drop_leg_in_range(self):
        inj = self._injector(drop=1.0)
        for _ in range(20):
            fault = inj.draw_message("forward", 4)
            assert 0 <= fault.drop_at < 4

    def test_delay_accumulates(self):
        inj = self._injector(delay=1.0, delay_s=0.05)
        inj.draw_message("forward", 4)
        inj.draw_message("reply", 4)
        assert inj.injected_delay_s == pytest.approx(0.10)
        assert inj.counts["message.delay"] == 2

    def test_partition_blocks_cross_legs_only(self):
        inj = self._injector()
        inj.set_partition([1, 2, 3])
        assert inj.partitioned
        assert inj.check_leg(1, 7) is not None
        assert inj.check_leg(7, 2) is not None
        assert inj.check_leg(1, 2) is None  # both isolated
        assert inj.check_leg(7, 8) is None  # both majority side
        inj.heal_partition()
        assert not inj.partitioned
        assert inj.check_leg(1, 7) is None

    def test_byzantine_assignment_deterministic(self):
        spec = ByzantineSpec(fraction=0.2)
        pool = list(range(100))
        seeds = SeedSequenceFactory(3).spawn("byz")
        a = SyncFaultInjector(byzantine=spec, seeds=seeds)
        b = SyncFaultInjector(
            byzantine=spec, seeds=SeedSequenceFactory(3).spawn("byz")
        )
        assert a.assign_byzantine(pool) == b.assign_byzantine(pool)
        assert len(a.byzantine_nodes) == 20
        assert set(a.byzantine_nodes.values()) <= set(BYZANTINE_BEHAVIORS)

    def test_byzantine_action_notes(self):
        inj = SyncFaultInjector(
            byzantine=ByzantineSpec(fraction=1.0),
            seeds=SeedSequenceFactory(0).spawn("byz"),
        )
        inj.assign_byzantine([1, 2, 3])
        assert inj.byzantine_action(1) in BYZANTINE_BEHAVIORS
        assert inj.byzantine_action(99) is None
        assert inj.total_injected == 1

    def test_notes_reach_event_trace(self):
        trace = EventTrace()
        inj = SyncFaultInjector(
            MessageFaultSpec(drop=1.0),
            seeds=SeedSequenceFactory(0).spawn("t"),
            event_trace=trace,
        )
        inj.note("message.drop", kind="forward", leg=2)
        events = list(trace.events("fault.message.drop"))
        assert len(events) == 1
        # the message-kind field is remapped off EventTrace's
        # positional parameter name
        assert events[0].fields["message"] == "forward"
        assert events[0].fields["leg"] == 2


class _Record:
    def __init__(self, payload):
        self.src = 1
        self.dst = 2
        self.payload = payload
        self.meta = {}


class TestSimNetInjector:
    def _injector(self, seed=0, **spec_kwargs):
        return SimNetFaultInjector(
            MessageFaultSpec(**spec_kwargs),
            seeds=SeedSequenceFactory(seed).spawn("s"),
        )

    def test_clean_spec_is_no_op(self):
        assert self._injector().on_message(_Record(b"x"), 0.1) is None

    def test_drop_short_circuits(self):
        inj = self._injector(drop=1.0, corrupt=1.0)
        verdict = inj.on_message(_Record(b"x"), 0.1)
        assert verdict.drop and not verdict.corrupt
        assert inj.counts == {"message.drop": 1}

    def test_delay_and_reorder_add_latency(self):
        inj = self._injector(delay=1.0, delay_s=0.05, reorder=1.0,
                             reorder_s=0.02)
        verdict = inj.on_message(_Record(b"x"), 0.1)
        assert verdict.extra_delay_s == pytest.approx(0.07)

    def test_duplicate_verdict(self):
        inj = self._injector(duplicate=1.0)
        verdict = inj.on_message(_Record(b"x"), 0.1)
        assert verdict.duplicate and verdict.duplicate_gap_s > 0

    def test_corrupt_payload_bytes(self):
        rec = _Record(b"\x00abc")
        SimNetFaultInjector.corrupt_payload(rec)
        assert rec.payload == b"\xffabc"
        assert rec.meta["fault"] == "corrupt"

    def test_corrupt_payload_blob_object(self):
        class Env:
            blob = b"\x0fxy"

        rec = _Record(Env())
        SimNetFaultInjector.corrupt_payload(rec)
        assert rec.payload.blob == b"\xf0xy"

    def test_verdicts_deterministic(self):
        a = self._injector(drop=0.2, delay=0.3)
        b = self._injector(drop=0.2, delay=0.3)
        va = [a.on_message(_Record(b"x"), 0.1) for _ in range(50)]
        vb = [b.on_message(_Record(b"x"), 0.1) for _ in range(50)]
        assert [
            (v.drop, v.extra_delay_s) if v else None for v in va
        ] == [
            (v.drop, v.extra_delay_s) if v else None for v in vb
        ]
