"""Faults in the discrete-event fabric: silent loss, deadlines,
duplication/corruption — and the determinism of it all."""

import pytest

from repro.core.emulation import TapEmulation
from repro.core.system import TapSystem
from repro.faults import named_plan
from repro.faults.injectors import MessageFaultSpec, SimNetFaultInjector
from repro.faults.plan import FaultPlan
from repro.simnet.topology import Topology
from repro.util.rng import SeedSequenceFactory


@pytest.fixture()
def setup():
    system = TapSystem.bootstrap(num_nodes=150, seed=31)
    alice = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(alice, count=10)
    emu = TapEmulation.from_system(system, topology=Topology(seed=5))
    return system, alice, emu


def _drop_all_plan():
    return FaultPlan(name="drop-all", messages=MessageFaultSpec(drop=1.0))


class TestSilentLoss:
    def test_dropped_message_times_out_at_deadline(self, setup):
        system, alice, emu = setup
        emu.install_faults(_drop_all_plan(), SeedSequenceFactory(1).spawn("f"))
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(
            alice, tunnel, 42, b"x", deadline_s=5.0
        )
        emu.simulator.run()
        assert not trace.delivered
        assert trace.failed_reason == "deadline exceeded"
        assert trace.finished_at == pytest.approx(5.0)

    def test_injected_drop_does_not_trigger_failure_discovery(self, setup):
        """Injected loss is silent (UDP-style): no dead-neighbour
        timeout fires, so routing tables stay untouched — transient
        loss must not be treated as node death."""
        system, alice, emu = setup
        emu.install_faults(_drop_all_plan(), SeedSequenceFactory(1).spawn("f"))
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(
            alice, tunnel, 42, b"x", deadline_s=5.0
        )
        emu.simulator.run()
        assert trace.timeouts == 0  # the on_drop path never ran
        assert emu.net.dropped_count >= 1

    def test_no_deadline_leaves_trace_unfinished(self, setup):
        system, alice, emu = setup
        emu.install_faults(_drop_all_plan(), SeedSequenceFactory(1).spawn("f"))
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert trace.finished_at is None  # lost in the void, no timer

    def test_clean_run_beats_its_deadline(self, setup):
        system, alice, emu = setup
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(
            alice, tunnel, 42, b"x", deadline_s=1e6
        )
        emu.simulator.run()
        assert trace.delivered
        assert trace.failed_reason is None

    def test_clear_faults_restores_delivery(self, setup):
        system, alice, emu = setup
        emu.install_faults(_drop_all_plan(), SeedSequenceFactory(1).spawn("f"))
        emu.clear_faults()
        tunnel = system.form_tunnel(alice, length=3)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert trace.delivered


class TestDelayAndDuplication:
    def test_injected_delay_slows_delivery(self):
        def run(with_faults):
            system = TapSystem.bootstrap(num_nodes=150, seed=31)
            al = system.tap_node(system.random_node_id("alice"))
            system.deploy_thas(al, count=10)
            emu = TapEmulation.from_system(system, topology=Topology(seed=5))
            if with_faults:
                plan = FaultPlan(
                    name="slow",
                    messages=MessageFaultSpec(delay=1.0, delay_s=0.5),
                )
                emu.install_faults(plan, SeedSequenceFactory(1).spawn("f"))
            tunnel = system.form_tunnel(al, length=3)
            trace = emu.send_through_tunnel(al, tunnel, 42, b"x")
            emu.simulator.run()
            assert trace.delivered
            return trace.latency

        assert run(True) > run(False)

    def test_duplicate_still_delivers_once_per_copy(self, setup):
        system, alice, emu = setup
        plan = FaultPlan(
            name="dup", messages=MessageFaultSpec(duplicate=1.0)
        )
        injector = emu.install_faults(plan, SeedSequenceFactory(1).spawn("f"))
        tunnel = system.form_tunnel(alice, length=2)
        trace = emu.send_through_tunnel(alice, tunnel, 42, b"x")
        emu.simulator.run()
        assert trace.delivered
        assert injector.counts["message.duplicate"] >= 1
        # duplicates inflate the delivery count beyond the primary walk
        assert emu.net.delivered_count > len(trace.path) - 1


class TestDeterminism:
    def test_same_seed_same_fault_pattern(self):
        def run():
            system = TapSystem.bootstrap(num_nodes=150, seed=31)
            al = system.tap_node(system.random_node_id("alice"))
            system.deploy_thas(al, count=10)
            emu = TapEmulation.from_system(system, topology=Topology(seed=5))
            injector = emu.install_faults(
                named_plan("flaky"), SeedSequenceFactory(9).spawn("f")
            )
            tunnel = system.form_tunnel(al, length=3)
            traces = [
                emu.send_through_tunnel(al, tunnel, 42, b"x", deadline_s=50.0)
                for _ in range(5)
            ]
            emu.simulator.run()
            return (
                [t.delivered for t in traces],
                [t.finished_at for t in traces],
                dict(injector.counts),
            )

        assert run() == run()
