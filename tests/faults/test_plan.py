"""Tests for fault-plan composition and the named catalogue."""

import pytest

from repro.faults.injectors import SimNetFaultInjector, SyncFaultInjector
from repro.faults.plan import (
    NAMED_PLANS,
    FaultPlan,
    NodeFaultEvent,
    PartitionEvent,
    named_plan,
)
from repro.util.rng import SeedSequenceFactory


class TestEvents:
    def test_node_event_validation(self):
        with pytest.raises(ValueError):
            NodeFaultEvent(round=-1)
        with pytest.raises(ValueError):
            NodeFaultEvent(round=0, count=0)
        with pytest.raises(ValueError):
            NodeFaultEvent(round=0, recover_after=0)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            PartitionEvent(round=5, heal_round=5)
        with pytest.raises(ValueError):
            PartitionEvent(round=0, fraction=0.0)

    def test_crash_stop_vs_crash_recover(self):
        stop = NodeFaultEvent(round=1)
        recover = NodeFaultEvent(round=1, recover_after=3)
        assert stop.recover_after is None
        assert recover.recover_after == 3


class TestCatalogue:
    def test_named_plan_lookup(self):
        assert named_plan("lossy").messages.drop == pytest.approx(0.05)

    def test_unknown_plan_lists_catalogue(self):
        with pytest.raises(KeyError, match="lossy"):
            named_plan("no-such-plan")

    def test_all_plans_build_both_injectors(self):
        for name, plan in NAMED_PLANS.items():
            seeds = SeedSequenceFactory(1).spawn("p", name)
            assert isinstance(plan.sync_injector(seeds), SyncFaultInjector)
            assert isinstance(plan.simnet_injector(seeds), SimNetFaultInjector)

    def test_smoke_plan_is_small(self):
        assert named_plan("smoke").rounds_hint <= 15

    def test_plans_are_frozen(self):
        plan = named_plan("lossy")
        with pytest.raises(AttributeError):
            plan.name = "mutated"


class TestCustomPlans:
    def test_byzantine_plan_builds_assigner(self):
        plan = named_plan("byzantine")
        seeds = SeedSequenceFactory(0).spawn("b")
        injector = plan.sync_injector(seeds)
        assigned = injector.assign_byzantine(list(range(50)))
        assert len(assigned) == 5  # 10% of 50

    def test_composite_plan(self):
        plan = FaultPlan(
            name="mix",
            messages=named_plan("lossy").messages,
            node_events=(NodeFaultEvent(round=2, count=2),),
            partitions=(PartitionEvent(round=4, heal_round=6),),
        )
        assert plan.messages.drop == pytest.approx(0.05)
        assert plan.node_events[0].round == 2
        assert plan.partitions[0].heal_round == 6
