"""Tests for the chaos runner: acceptance bars + deterministic replay."""

import json

import pytest

from repro.core.resilience import ResiliencePolicy
from repro.faults import (
    ChaosConfig,
    availability_report,
    canonical_json,
    named_plan,
    run_chaos,
)

FAST = ChaosConfig.fast()


@pytest.fixture(scope="module")
def lossy_policy_report():
    return run_chaos(named_plan("lossy"), FAST)


@pytest.fixture(scope="module")
def lossy_baseline_report():
    return run_chaos(named_plan("lossy"), FAST, policy=None)


class TestAcceptance:
    def test_policy_holds_availability_under_loss(self, lossy_policy_report):
        # The ISSUE acceptance bar: 5% message loss, retry/reform keeps
        # session availability >= 0.99.
        assert lossy_policy_report["summary"]["availability"] >= 0.99

    def test_baseline_measurably_degrades(
        self, lossy_policy_report, lossy_baseline_report
    ):
        policy = lossy_policy_report["summary"]["availability"]
        baseline = lossy_baseline_report["summary"]["availability"]
        assert baseline < policy
        assert baseline < 0.99

    def test_recovered_requests_counted(self, lossy_policy_report):
        s = lossy_policy_report["summary"]
        assert s["retries"] > 0
        assert s["recovered"] > 0
        assert s["effective_availability"] <= s["availability"]

    def test_faults_were_actually_injected(self, lossy_policy_report):
        assert lossy_policy_report["summary"]["faults_injected"].get(
            "message.drop", 0
        ) > 0


class TestDeterminism:
    def test_same_seed_same_digest(self, lossy_policy_report):
        replay = run_chaos(named_plan("lossy"), FAST)
        assert replay["digest"] == lossy_policy_report["digest"]
        assert replay["events_jsonl"] == lossy_policy_report["events_jsonl"]

    def test_different_seed_different_digest(self, lossy_policy_report):
        other = run_chaos(
            named_plan("lossy"),
            ChaosConfig(num_nodes=100, sessions=3, rounds=12, seed=77),
        )
        assert other["digest"] != lossy_policy_report["digest"]

    def test_canonical_json_round_trips(self, lossy_policy_report):
        text = canonical_json(lossy_policy_report)
        parsed = json.loads(text)
        assert parsed["digest"] == lossy_policy_report["digest"]
        assert "events_jsonl" not in parsed


class TestReportShape:
    def test_per_session_rows(self, lossy_policy_report):
        rows = lossy_policy_report["rows"]
        assert len(rows) == FAST.sessions
        for row in rows:
            assert row["requests"] == FAST.rounds
            assert 0.0 <= row["availability"] <= 1.0
            assert row["mttr_rounds"] >= 0.0

    def test_human_report_renders(
        self, lossy_policy_report, lossy_baseline_report
    ):
        text = availability_report(
            lossy_policy_report, baseline=lossy_baseline_report
        )
        assert "availability" in text
        assert "MTTR" in text
        assert lossy_policy_report["digest"] in text


class TestOtherPlans:
    def test_churn_plan_crashes_and_recovers(self):
        report = run_chaos(named_plan("smoke"), FAST)
        faults = report["summary"]["faults_injected"]
        assert faults.get("node.crash", 0) > 0
        assert faults.get("node.recover", 0) > 0

    def test_partition_heals(self):
        report = run_chaos(
            named_plan("partition"),
            ChaosConfig(num_nodes=100, sessions=2, rounds=20, seed=11),
        )
        faults = report["summary"]["faults_injected"]
        assert faults.get("partition.split") == 1
        assert faults.get("partition.heal") == 1
