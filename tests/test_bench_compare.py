"""Unit tests for the bench_compare gate logic (no benchmarks run).

The harness itself lives outside the package in ``tools/``, so it is
loaded by path; only the pure comparison/gate functions are exercised
— ``compare`` (baseline carry-forward + loud missing-benchmark
warning) and ``batch_speedup_failures`` (per-route normalisation).
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "bench_compare.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_compare", _TOOL)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_compare", module)
    spec.loader.exec_module(module)
    return module


def _stamped(results: dict, cpus: int = 4) -> dict:
    return {"cpus": cpus, "results": results}


class TestCompare:
    def test_speedup_and_gate(self, bench):
        baseline = _stamped({"a": {"median_ns": 1000.0}})
        current = _stamped({"a": {"median_ns": 500.0}})
        speedup, failures = bench.compare(baseline, current, threshold=1.15)
        assert speedup == {"a": 2.0}
        assert failures == []

    def test_regression_beyond_threshold_fails(self, bench):
        baseline = _stamped({"a": {"median_ns": 1000.0}})
        current = _stamped({"a": {"median_ns": 2000.0}})
        _, failures = bench.compare(baseline, current, threshold=1.15)
        assert len(failures) == 1
        assert "a:" in failures[0]

    def test_missing_benchmark_warns_and_carries_forward(self, bench, capsys):
        baseline = _stamped({
            "a": {"median_ns": 1000.0},
            "gone": {"median_ns": 700.0},
        })
        current = _stamped({"a": {"median_ns": 1000.0}})
        speedup, failures = bench.compare(
            baseline, current, threshold=1.15,
            previous_speedup={"gone": 1.4, "a": 9.9},
        )
        assert failures == []
        # the stale entry rides along; the measured one is refreshed
        assert speedup == {"a": 1.0, "gone": 1.4}
        err = capsys.readouterr().err
        assert "1 baseline benchmark(s) not measured" in err
        assert "gone" in err
        assert "carried forward" in err

    def test_missing_benchmark_without_history_still_warns(self, bench, capsys):
        baseline = _stamped({"gone": {"median_ns": 700.0}})
        current = _stamped({})
        speedup, _ = bench.compare(baseline, current, threshold=1.15)
        assert speedup == {}
        assert "gone" in capsys.readouterr().err

    def test_cpu_mismatch_warns(self, bench, capsys):
        baseline = _stamped({}, cpus=8)
        current = _stamped({}, cpus=1)
        bench.compare(baseline, current, threshold=1.15)
        assert "not like-for-like" in capsys.readouterr().err

    def test_new_benchmark_fails_without_allow_new(self, bench):
        baseline = _stamped({"a": {"median_ns": 1000.0}})
        current = _stamped({
            "a": {"median_ns": 1000.0},
            "brand.new_1m": {"median_ns": 5.0},
        })
        speedup, failures = bench.compare(baseline, current, threshold=1.15)
        assert len(failures) == 1
        assert "brand.new_1m" in failures[0]
        assert "--allow-new" in failures[0]
        assert "brand.new_1m" not in speedup

    def test_new_benchmark_adopted_with_allow_new(self, bench, capsys):
        baseline = _stamped({"a": {"median_ns": 1000.0}})
        current = _stamped({
            "a": {"median_ns": 1000.0},
            "brand.new_1m": {"median_ns": 5.0},
        })
        speedup, failures = bench.compare(
            baseline, current, threshold=1.15, allow_new=True,
        )
        assert failures == []
        assert speedup == {"a": 1.0, "brand.new_1m": 1.0}
        assert "adopting 1 benchmark(s)" in capsys.readouterr().err


class TestScale1mGates:
    def test_rss_within_budget_passes(self, bench):
        results = {
            "pastry.bootstrap_1m": {
                "median_ns": 1.0, "peak_rss_bytes": 500 * 1024**2,
            },
        }
        assert bench.scale_1m_failures(results) == []

    def test_rss_over_budget_fails(self, bench):
        results = {
            "compact.churn_1m": {
                "median_ns": 1.0,
                "peak_rss_bytes": bench.SCALE_1M_MAX_RSS + 1,
            },
        }
        failures = bench.scale_1m_failures(results)
        assert len(failures) == 1
        assert "compact.churn_1m" in failures[0]

    def test_missing_rss_is_skipped(self, bench):
        assert bench.scale_1m_failures(
            {"pastry.bootstrap_1m": {"median_ns": 1.0}}
        ) == []

    def test_env_knob_gates_the_group(self, bench, monkeypatch):
        monkeypatch.delenv("TAP_BENCH_SCALE_1M", raising=False)
        enabled, reason = bench.scale_1m_status()
        assert not enabled and "TAP_BENCH_SCALE_1M" in reason


class TestBytesRegressions:
    def test_within_ratio_is_quiet(self, bench):
        baseline = _stamped({"a": {"median_ns": 1.0, "bytes_per_op": 100}})
        current = _stamped({"a": {"median_ns": 1.0, "bytes_per_op": 110}})
        assert bench.bytes_regressions(baseline, current) == []

    def test_regression_warns_with_names(self, bench):
        baseline = _stamped({"a": {"median_ns": 1.0, "bytes_per_op": 100}})
        current = _stamped({"a": {"median_ns": 1.0, "bytes_per_op": 200}})
        warnings = bench.bytes_regressions(baseline, current)
        assert len(warnings) == 1 and "a:" in warnings[0]

    def test_absent_column_is_skipped(self, bench):
        baseline = _stamped({"a": {"median_ns": 1.0}})
        current = _stamped({"a": {"median_ns": 1.0, "bytes_per_op": 200}})
        assert bench.bytes_regressions(baseline, current) == []


class TestBatchSpeedupGate:
    def _results(self, bench, per_route_ratio: float) -> dict:
        fast = "compact.route_many_100k"
        slow = "compact.route_100k"
        slow_ns = 1_000_000.0
        per_slow = slow_ns / bench.ROUTE_UNITS[slow]
        fast_ns = (per_slow / per_route_ratio) * bench.ROUTE_UNITS[fast]
        return {
            fast: {"median_ns": fast_ns},
            slow: {"median_ns": slow_ns},
        }

    def test_fast_enough_passes(self, bench):
        assert bench.batch_speedup_failures(self._results(bench, 25.0)) == []

    def test_too_slow_fails(self, bench):
        failures = bench.batch_speedup_failures(self._results(bench, 10.0))
        assert len(failures) == 1
        assert "x10.0 per route" in failures[0]

    def test_missing_member_is_skipped(self, bench):
        results = self._results(bench, 10.0)
        del results["compact.route_100k"]
        assert bench.batch_speedup_failures(results) == []
