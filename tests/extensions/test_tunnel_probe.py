"""Tests for tunnel health probing (§9 corrupted-tunnel detection)."""

import pytest

from repro.extensions.tunnel_probe import TunnelProber


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=12)
    return node


@pytest.fixture()
def prober(system):
    return TunnelProber(system)


class TestProbe:
    def test_healthy_tunnel(self, system, alice, prober):
        tunnel = system.form_tunnel(alice, length=3)
        report = prober.probe(alice, tunnel)
        assert report.functional and report.returned and not report.tampered
        assert report.healthy
        assert report.overlay_hops == 3

    def test_probe_survives_hop_failover(self, system, alice, prober):
        tunnel = system.form_tunnel(alice, length=3)
        system.fail_node(system.network.closest_alive(tunnel.hops[0].hop_id))
        report = prober.probe(alice, tunnel)
        assert report.healthy

    def test_broken_tunnel_detected(self, system, alice, prober):
        tunnel = system.form_tunnel(alice, length=3)
        holders = list(system.store.holders(tunnel.hops[1].hop_id))
        system.fail_nodes(holders, repair_after=False)
        report = prober.probe(alice, tunnel)
        assert not report.functional
        assert not report.healthy
        assert report.failure_reason

    def test_tampering_detected(self, system, alice, prober, monkeypatch):
        """A malicious hop that rewrites the probe payload is caught by
        the owner-only authentication."""
        tunnel = system.form_tunnel(alice, length=3)
        original_send = system.forwarder.send

        def tampering_send(initiator, tun, destination_id, payload, deliver=None):
            def corrupt_deliver(nid, data):
                if deliver is not None:
                    deliver(nid, b"\x00" * len(data))

            return original_send(initiator, tun, destination_id, payload,
                                 deliver=corrupt_deliver)

        monkeypatch.setattr(system.forwarder, "send", tampering_send)
        report = prober.probe(alice, tunnel)
        assert report.functional
        assert report.tampered
        assert not report.healthy

    def test_sequence_replay_detected(self, system, alice, prober):
        """A replayed probe (wrong sequence number) fails the check."""
        tunnel = system.form_tunnel(alice, length=2)
        key = prober._owner_probe_key(alice)
        stale = key.seal(b"probe" + (99).to_bytes(8, "big") + (0).to_bytes(16, "big"))
        original_send = system.forwarder.send

        def replaying_send(initiator, tun, destination_id, payload, deliver=None):
            return original_send(initiator, tun, destination_id, stale, deliver=deliver)

        system.forwarder.send = replaying_send
        try:
            report = prober.probe(alice, tunnel, sequence=3)
        finally:
            system.forwarder.send = original_send
        assert report.functional and report.tampered

    def test_probe_key_stable_per_owner(self, system, alice, prober):
        assert prober._owner_probe_key(alice) is prober._owner_probe_key(alice)


class TestAudit:
    def test_audit_flags_broken_tunnels(self, system, alice, prober):
        healthy = system.form_tunnel(alice, length=2)
        broken = system.form_tunnel(alice, length=2)
        holders = list(system.store.holders(broken.hops[0].hop_id))
        system.fail_nodes(holders, repair_after=False)
        summary = prober.audit(alice, [healthy, broken])
        assert summary["probed"] == 2
        assert summary["healthy"] == 1
        assert summary["broken"] == 1
        assert summary["needs_refresh"] == [broken]

    def test_audit_then_refresh_recovers(self, system, alice, prober):
        """End-to-end: audit detects, refresh replaces, traffic flows."""
        tunnel = system.form_tunnel(alice, length=2)
        holders = list(system.store.holders(tunnel.hops[1].hop_id))
        system.fail_nodes(holders, repair_after=False)
        summary = prober.audit(alice, [tunnel])
        assert summary["needs_refresh"]

        from repro.core.refresh import RefreshPolicy

        replacement = RefreshPolicy(interval=1.0).refresh(
            system, alice, tunnel, now=1.0
        )
        assert prober.probe(alice, replacement).healthy
