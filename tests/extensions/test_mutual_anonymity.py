"""Tests for hidden services (mutual anonymity extension)."""

import pytest

from repro.extensions.mutual_anonymity import (
    MutualAnonymity,
    ServiceError,
    ServiceRecord,
    service_id,
)


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def mutual(system):
    return MutualAnonymity(system)


@pytest.fixture()
def provider(system):
    node = system.tap_node(system.random_node_id("provider"))
    system.deploy_thas(node, count=12)
    return node


@pytest.fixture()
def requester(system):
    node = system.tap_node(system.random_node_id("requester"))
    system.deploy_thas(node, count=12)
    return node


@pytest.fixture()
def service(mutual, provider):
    return mutual.publish_service(
        provider, b"hidden-wiki", handler=lambda req: b"served:" + req
    )


class TestServiceRecord:
    def test_roundtrip(self, mutual, service):
        record = mutual.lookup(b"hidden-wiki")
        assert record.entry_hop_id == service.inbound.hop_ids[0]
        assert record.public_key == service.keypair.public

    def test_record_does_not_name_provider(self, mutual, service, provider):
        """The anonymity root: the DHT record pins hop ids and a key,
        never the provider's node id or IP."""
        record = mutual.lookup(b"hidden-wiki")
        blob = record.encode()
        assert provider.node_id.to_bytes(16, "big") not in blob
        assert provider.ip.encode() not in blob

    def test_service_id_deterministic(self):
        assert service_id(b"x") == service_id(b"x")
        assert service_id(b"x") != service_id(b"y")

    def test_malformed_record_rejected(self):
        with pytest.raises(ServiceError):
            ServiceRecord.decode(b"garbage")


class TestCalls:
    def test_end_to_end(self, system, mutual, service, requester):
        fwd = system.form_tunnel(requester, length=3)
        rpl = system.form_reply_tunnel(requester, length=3)
        response, trace = mutual.call(
            requester, b"hidden-wiki", b"GET /index", fwd, rpl
        )
        assert trace.success
        assert response == b"served:GET /index"
        assert service.served == 1

    def test_multiple_calls(self, system, mutual, service, requester):
        for i in range(3):
            fwd = system.form_tunnel(requester, length=2)
            rpl = system.form_reply_tunnel(requester, length=2)
            response, _ = mutual.call(
                requester, b"hidden-wiki", f"req{i}".encode(), fwd, rpl
            )
            assert response == f"served:req{i}".encode()
            system.retire_tunnel(requester, fwd)
            system.retire_tunnel(requester, rpl)
        assert service.served == 3

    def test_requester_leg_never_touches_provider(self, system, mutual, service,
                                                  requester, provider):
        """The requester's observable trace ends at the service entry
        hop, not at the provider."""
        fwd = system.form_tunnel(requester, length=3)
        rpl = system.form_reply_tunnel(requester, length=3)
        _, trace = mutual.call(requester, b"hidden-wiki", b"x", fwd, rpl)
        assert trace.destination == service.inbound.hop_ids[0]
        entry_root = system.network.closest_alive(service.inbound.hop_ids[0])
        assert trace.exit_path[-1] == entry_root

    def test_provider_never_sees_requester(self, system, mutual, provider, requester):
        """The handler's entire view is the request body."""
        seen = []
        mutual.publish_service(provider, b"spy-check", handler=lambda b: (seen.append(b) or b""))
        fwd = system.form_tunnel(requester, length=2)
        rpl = system.form_reply_tunnel(requester, length=2)
        mutual.call(requester, b"spy-check", b"just-the-body", fwd, rpl)
        assert seen == [b"just-the-body"]

    def test_unknown_service(self, system, mutual, requester):
        from repro.past.storage import StorageError

        with pytest.raises(StorageError):
            mutual.lookup(b"no-such-service")


class TestFaultTolerance:
    def test_service_survives_inbound_hop_failure(self, system, mutual, service,
                                                  requester):
        """TAP's replica fail-over extends to the hidden service's
        inbound tunnel: kill its hop nodes, calls keep succeeding."""
        for tha in service.inbound.hops:
            system.fail_node(system.network.closest_alive(tha.hop_id))
        fwd = system.form_tunnel(requester, length=2)
        rpl = system.form_reply_tunnel(requester, length=2)
        response, trace = mutual.call(requester, b"hidden-wiki", b"ping", fwd, rpl)
        assert trace.success
        assert response == b"served:ping"

    def test_record_survives_record_holder_failure(self, system, mutual, service,
                                                   requester):
        key = service.record_key
        system.fail_node(system.store.root(key))
        record = mutual.lookup(b"hidden-wiki")
        assert record.entry_hop_id == service.inbound.hop_ids[0]

    def test_broken_inbound_tunnel_fails_closed(self, system, mutual, service,
                                                requester):
        holders = list(system.store.holders(service.inbound.hops[1].hop_id))
        system.fail_nodes(holders, repair_after=False)
        fwd = system.form_tunnel(requester, length=2)
        rpl = system.form_reply_tunnel(requester, length=2)
        response, trace = mutual.call(requester, b"hidden-wiki", b"ping", fwd, rpl)
        assert response is None  # no answer, but no identity leak either
