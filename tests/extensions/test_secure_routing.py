"""Tests for the secure-routing extension (§9 / extended report)."""

import random

import pytest

from repro.extensions.secure_routing import (
    RoutingInterceptor,
    estimate_id_spacing,
    honest_neighbor_set,
    neighbor_set_spacing,
    routing_failure_test,
    secure_route,
)
from repro.util.ids import ID_SPACE, random_id
from tests.conftest import build_network


@pytest.fixture(scope="module")
def net():
    return build_network(300, seed=71)


@pytest.fixture()
def interceptor(net):
    rng = random.Random(72)
    return RoutingInterceptor(set(rng.sample(net.alive_ids, 60)))  # 20%


@pytest.fixture()
def honest_forger(net):
    rng = random.Random(72)
    return RoutingInterceptor(
        set(rng.sample(net.alive_ids, 60)), forge_honest_set=True
    )


class TestSpacingEstimates:
    def test_own_estimate_close_to_truth(self, net):
        true_spacing = ID_SPACE / net.size
        for nid in net.alive_ids[::50]:
            est = estimate_id_spacing(net, nid)
            assert true_spacing / 3 < est < true_spacing * 3

    def test_neighbor_set_spacing_uniform(self, net):
        root = net.alive_ids[10]
        spacing = neighbor_set_spacing(honest_neighbor_set(net, root))
        assert ID_SPACE / net.size / 3 < spacing < ID_SPACE / net.size * 3

    def test_degenerate_sets(self):
        assert neighbor_set_spacing([]) == float(ID_SPACE)
        assert neighbor_set_spacing([5]) == float(ID_SPACE)

    def test_lonely_node(self):
        lonely = build_network(1, seed=1)
        nid = lonely.alive_ids[0]
        assert estimate_id_spacing(lonely, nid) == float(ID_SPACE)


class TestFailureTest:
    def test_accepts_honest_responses(self, net):
        """False-accusation rate must be negligible."""
        rng = random.Random(73)
        observer = net.alive_ids[0]
        accepted = 0
        for _ in range(100):
            key = random_id(rng)
            root = net.closest_alive(key)
            accepted += routing_failure_test(
                net, observer, key, root, honest_neighbor_set(net, root)
            )
        assert accepted >= 98

    def test_rejects_coalition_only_neighbor_set(self, net, interceptor):
        """Forging the set from coalition ids makes it ~1/p sparser."""
        rng = random.Random(74)
        observer = net.alive_ids[0]
        caught = impostors = 0
        for _ in range(100):
            key = random_id(rng)
            fake = interceptor.fake_root(key)
            if fake == net.closest_alive(key):
                continue
            impostors += 1
            forged = interceptor.forged_neighbor_set(net, fake)
            if not routing_failure_test(net, observer, key, fake, forged):
                caught += 1
        assert impostors > 50
        assert caught > impostors * 0.9

    def test_rejects_honest_set_forgery(self, net, honest_forger):
        """Presenting the impostor's true leaf set passes density but
        exposes honest nodes closer to the key."""
        rng = random.Random(75)
        observer = net.alive_ids[0]
        caught = impostors = 0
        for _ in range(100):
            key = random_id(rng)
            fake = honest_forger.fake_root(key)
            if fake == net.closest_alive(key):
                continue
            impostors += 1
            forged = honest_forger.forged_neighbor_set(net, fake)
            if not routing_failure_test(net, observer, key, fake, forged):
                caught += 1
        assert caught > impostors * 0.8

    def test_empty_neighbor_set_rejected(self, net):
        observer = net.alive_ids[0]
        assert not routing_failure_test(net, observer, 1, 2, [])


class TestInterceptor:
    def test_empty_coalition_cannot_forge(self):
        adversary = RoutingInterceptor(set())
        with pytest.raises(ValueError):
            adversary.fake_root(1)

    def test_hijack_at_malicious_relay(self, net, interceptor):
        rng = random.Random(76)
        hijacks = 0
        for _ in range(100):
            src = net.alive_ids[rng.randrange(net.size)]
            key = random_id(rng)
            result = interceptor.route(net, src, key)
            if result.meta.get("hijacked"):
                hijacks += 1
                assert result.destination == interceptor.fake_root(key)
                assert "neighbor_set" in result.meta
        assert hijacks > 5

    def test_honest_path_returns_true_root(self, net, interceptor):
        rng = random.Random(77)
        for _ in range(60):
            src = net.alive_ids[rng.randrange(net.size)]
            key = random_id(rng)
            result = interceptor.route(net, src, key)
            if not result.meta.get("hijacked"):
                assert result.destination == net.closest_alive(key)

    def test_malicious_destination_is_not_interception(self, net, interceptor):
        """A malicious node that IS the root serves the key normally."""
        rng = random.Random(78)
        for _ in range(200):
            key = random_id(rng)
            truth = net.closest_alive(key)
            if not interceptor.is_malicious(truth):
                continue
            src = next(
                n for n in net.alive_ids if not interceptor.is_malicious(n)
            )
            result = interceptor.route(net, src, key)
            if not result.meta.get("hijacked"):
                assert result.destination == truth
            break


class TestSecureRoute:
    def test_no_adversary_trivially_correct(self, net):
        rng = random.Random(79)
        for _ in range(20):
            src = net.alive_ids[rng.randrange(net.size)]
            key = random_id(rng)
            result = secure_route(net, src, key)
            assert result.success, (result.candidates, result.rejected)
            assert result.accepted_root == net.closest_alive(key)

    @pytest.mark.parametrize("forge_honest", [False, True])
    def test_cuts_silent_deception_under_interception(self, net, forge_honest):
        """The headline property: verification converts silent
        deceptions (client trusts an impostor) into detected failures
        (alarms), for both forgery strategies."""
        rng = random.Random(80)
        coalition = set(rng.sample(net.alive_ids, 60))
        adversary = RoutingInterceptor(coalition, forge_honest_set=forge_honest)
        naive_deceived = secure_deceived = secure_alarms = trials = 0
        for _ in range(300):
            src = net.alive_ids[rng.randrange(net.size)]
            key = random_id(rng)
            truth = net.closest_alive(key)
            if adversary.is_malicious(src) or adversary.is_malicious(truth):
                continue
            trials += 1
            naive = adversary.route(net, src, key)
            naive_deceived += naive.destination != truth
            secure = secure_route(net, src, key, adversary, redundancy=4,
                                  rng=random.Random(key & 0xFFFF))
            if secure.alarm:
                secure_alarms += 1
            elif secure.accepted_root != truth:
                secure_deceived += 1
        assert trials > 100
        assert naive_deceived > 5  # the attack is real
        # Verification eliminates almost all silent deception.
        assert secure_deceived <= max(1, naive_deceived // 5)
        assert secure_alarms > 0

    def test_rejected_candidates_are_mostly_impostors(self, net, interceptor):
        """The test is probabilistic: rare false accusations of honest
        roots are tolerated, but impostors must dominate rejections."""
        rng = random.Random(81)
        rejected_impostors = rejected_honest = 0
        for _ in range(100):
            src = net.alive_ids[rng.randrange(net.size)]
            key = random_id(rng)
            # Skip keys whose true root is malicious: a forged response
            # can then name the true root (with a forged neighbor set),
            # and rejecting it is correct, not a false accusation.
            if interceptor.is_malicious(src) or interceptor.is_malicious(
                net.closest_alive(key)
            ):
                continue
            result = secure_route(net, src, key, interceptor, redundancy=4)
            for bad in result.rejected:
                if bad == net.closest_alive(key):
                    rejected_honest += 1
                else:
                    rejected_impostors += 1
        assert rejected_impostors > 0
        assert rejected_honest <= max(2, rejected_impostors // 4)

    def test_dead_source_rejected(self, net):
        from repro.pastry.network import RoutingError

        with pytest.raises(RoutingError):
            secure_route(net, 12345, 1)  # not a node

    def test_redundancy_bounds_paths(self, net):
        src = net.alive_ids[0]
        result = secure_route(net, src, random_id(random.Random(82)), redundancy=2)
        assert result.paths_used <= 2
