"""Tests for anonymous mail with durable reply paths (§1 email case)."""

import random

import pytest

from repro.extensions.anonmail import AnonymousMail, FixedReturnPath


@pytest.fixture()
def system(tap_system):
    return tap_system


@pytest.fixture()
def mail(system):
    return AnonymousMail(system)


@pytest.fixture()
def alice(system):
    node = system.tap_node(system.random_node_id("alice"))
    system.deploy_thas(node, count=12)
    return node


@pytest.fixture()
def bob_id(system):
    return system.random_node_id("bob")


def _send(system, mail, alice, bob_id, body=b"hello bob"):
    fwd = system.form_tunnel(alice, length=3)
    rpl = system.form_reply_tunnel(alice, length=3)
    return mail.send(alice, bob_id, body, fwd, rpl)


class TestDelivery:
    def test_mail_lands_in_inbox(self, system, mail, alice, bob_id):
        sent = _send(system, mail, alice, bob_id)
        assert sent.delivered and sent.trace.success
        inbox = mail.inbox(bob_id)
        assert len(inbox) == 1
        assert inbox[0].body == b"hello bob"

    def test_envelope_does_not_name_sender(self, system, mail, alice, bob_id):
        """Sender anonymity: nothing in the envelope identifies Alice."""
        _send(system, mail, alice, bob_id)
        envelope = mail.inbox(bob_id)[0]
        sender_bytes = alice.node_id.to_bytes(16, "big")
        assert sender_bytes not in envelope.reply_blob
        assert sender_bytes != envelope.reply_first_hop.to_bytes(16, "big")
        # the reply entry hop is a THA id, not the sender
        assert system.network.closest_alive(envelope.reply_first_hop) != alice.node_id

    def test_misrouted_mail_not_delivered(self, system, mail, alice):
        """Destination id resolving to a different node than intended
        (e.g. the recipient died) must not create a phantom inbox."""
        bob_id = system.random_node_id("bob2")
        system.fail_node(bob_id)
        sent = _send(system, mail, alice, bob_id)
        assert not sent.delivered
        assert mail.inbox(bob_id) == []


class TestReplies:
    def test_immediate_reply(self, system, mail, alice, bob_id):
        sent = _send(system, mail, alice, bob_id)
        envelope = mail.inbox(bob_id)[0]
        trace = mail.reply(bob_id, envelope, b"hi anonymous friend")
        assert trace.success and envelope.replied
        assert sent.responses == [b"hi anonymous friend"]

    def test_reply_after_hop_churn(self, system, mail, alice, bob_id):
        """THE claim: the reply works even though every hop node of the
        recorded reply tunnel died between send and reply."""
        sent = _send(system, mail, alice, bob_id)
        envelope = mail.inbox(bob_id)[0]
        for tha in sent.reply_tunnel.hops:
            system.fail_node(system.network.closest_alive(tha.hop_id))
        trace = mail.reply(bob_id, envelope, b"late reply")
        assert trace.success, trace.failure_reason
        assert sent.responses == [b"late reply"]

    def test_fixed_return_path_dies_where_tap_survives(self, system, mail,
                                                       alice, bob_id):
        rng = random.Random(4004)
        sent = _send(system, mail, alice, bob_id)
        roots = [
            system.network.closest_alive(t.hop_id)
            for t in sent.reply_tunnel.hops
        ]
        fixed = FixedReturnPath.record(roots, 3, rng)

        system.fail_node(roots[1])

        assert not fixed.reply(alice.node_id, b"x", system.network.is_alive)
        envelope = mail.inbox(bob_id)[0]
        assert mail.reply(bob_id, envelope, b"y").success

    def test_reply_fails_closed_when_anchor_lost(self, system, mail, alice, bob_id):
        sent = _send(system, mail, alice, bob_id)
        envelope = mail.inbox(bob_id)[0]
        holders = list(system.store.holders(sent.reply_tunnel.hops[0].hop_id))
        system.fail_nodes(holders, repair_after=False)
        trace = mail.reply(bob_id, envelope, b"z")
        assert not trace.success
        assert sent.responses == []

    def test_multiple_conversations_isolated(self, system, mail, alice, bob_id):
        carol = system.tap_node(system.random_node_id("carol"))
        system.deploy_thas(carol, count=8)
        sent_a = _send(system, mail, alice, bob_id, body=b"from alice")
        fwd = system.form_tunnel(carol, length=2)
        rpl = system.form_reply_tunnel(carol, length=2)
        sent_c = mail.send(carol, bob_id, b"from carol", fwd, rpl)

        for envelope in mail.inbox(bob_id):
            mail.reply(bob_id, envelope, b"re:" + envelope.body)
        assert sent_a.responses == [b"re:from alice"]
        assert sent_c.responses == [b"re:from carol"]
