"""Tests for the "current tunneling" fixed-node baseline."""

import random

import pytest

from repro.baselines.fixed_tunnel import FixedNodeTunnel, form_fixed_tunnel


class TestFormation:
    def test_distinct_relays(self):
        t = form_fixed_tunnel(list(range(100)), 5, random.Random(1))
        assert len(set(t.relay_ids)) == 5
        assert len(t.keys) == 5

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            form_fixed_tunnel([1, 2], 3, random.Random(1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FixedNodeTunnel([])

    def test_keys_must_parallel(self):
        from repro.crypto.symmetric import SymmetricKey

        with pytest.raises(ValueError):
            FixedNodeTunnel([1, 2], [SymmetricKey(b"k" * 16)])


class TestFunctions:
    def test_all_alive_functions(self):
        t = form_fixed_tunnel(list(range(10)), 3, random.Random(2))
        assert t.functions(lambda nid: True)

    def test_any_dead_breaks(self):
        t = form_fixed_tunnel(list(range(10)), 3, random.Random(2))
        dead = t.relay_ids[1]
        assert not t.functions(lambda nid: nid != dead)


class TestSend:
    def test_payload_delivered(self):
        t = form_fixed_tunnel(list(range(10)), 3, random.Random(3))
        ok, dest, payload = t.send(77, b"msg", lambda nid: True)
        assert ok and dest == 77 and payload == b"msg"

    def test_dead_relay_kills_message(self):
        t = form_fixed_tunnel(list(range(10)), 3, random.Random(3))
        dead = t.relay_ids[2]
        ok, dest, payload = t.send(77, b"msg", lambda nid: nid != dead)
        assert not ok and dest is None and payload is None

    def test_send_without_keys_rejected(self):
        t = form_fixed_tunnel(list(range(10)), 3, random.Random(3), with_keys=False)
        with pytest.raises(ValueError):
            t.send(77, b"msg", lambda nid: True)

    def test_failure_prob_matches_theory(self):
        """Monte-Carlo failure rate ≈ 1-(1-p)^l — the Figure 2 curve."""
        from repro.analysis.theory import tunnel_failure_prob_current

        rng = random.Random(4)
        nodes = list(range(1000))
        p, l, trials = 0.3, 5, 800
        fails = 0
        for _ in range(trials):
            t = form_fixed_tunnel(nodes, l, rng, with_keys=False)
            dead = set(rng.sample(nodes, int(p * len(nodes))))
            if not t.functions(lambda nid: nid not in dead):
                fails += 1
        expected = tunnel_failure_prob_current(p, l, n_nodes=len(nodes))
        assert fails / trials == pytest.approx(expected, abs=0.05)
