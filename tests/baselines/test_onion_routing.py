"""Tests for the Onion Routing baseline/bootstrap circuit."""

import random

import pytest

from repro.baselines.onion_routing import OnionCircuit, OnionRoutingError


@pytest.fixture()
def relays(tap_system):
    ids = tap_system.network.alive_ids[:3]
    return [tap_system.tap_node(nid) for nid in ids]


class TestCircuit:
    def test_empty_rejected(self):
        with pytest.raises(OnionRoutingError):
            OnionCircuit([])

    def test_traverse_delivers(self, relays):
        circuit = OnionCircuit(relays)
        ok, dest, payload = circuit.traverse(
            99, b"deploy-this", random.Random(1), lambda nid: True
        )
        assert ok and dest == 99 and payload == b"deploy-this"

    def test_each_relay_sees_only_next(self, relays):
        circuit = OnionCircuit(relays)
        blob = circuit.wrap(99, b"secret", random.Random(1))
        is_exit, nxt, inner = OnionCircuit.peel(relays[0], blob)
        assert not is_exit and nxt == relays[1].node_id
        assert b"secret" not in inner
        is_exit, nxt, inner = OnionCircuit.peel(relays[1], inner)
        assert not is_exit and nxt == relays[2].node_id
        is_exit, dest, payload = OnionCircuit.peel(relays[2], inner)
        assert is_exit and dest == 99 and payload == b"secret"

    def test_dead_relay_aborts_session(self, relays):
        """§3.3: a dead node on the bootstrap path aborts deployment."""
        circuit = OnionCircuit(relays)
        dead = relays[1].node_id
        ok, dest, payload = circuit.traverse(
            99, b"x", random.Random(1), lambda nid: nid != dead
        )
        assert not ok and dest is None

    def test_wrong_relay_cannot_peel(self, relays):
        circuit = OnionCircuit(relays)
        blob = circuit.wrap(99, b"x", random.Random(1))
        from repro.crypto.asymmetric import RsaError

        with pytest.raises((OnionRoutingError, RsaError)):
            OnionCircuit.peel(relays[2], blob)

    def test_single_relay_circuit(self, relays):
        circuit = OnionCircuit(relays[:1])
        ok, dest, payload = circuit.traverse(
            7, b"y", random.Random(2), lambda nid: True
        )
        assert ok and dest == 7 and payload == b"y"
