"""Tests for the Crowds baseline."""

import random

import numpy as np
import pytest

from repro.baselines.crowds import CrowdsNetwork


@pytest.fixture()
def crowd():
    members = list(range(100))
    return CrowdsNetwork(members, p_f=0.75, collaborators=set(range(0, 100, 10)))


class TestValidation:
    def test_pf_bounds(self):
        with pytest.raises(ValueError):
            CrowdsNetwork([1, 2], p_f=0.4)
        with pytest.raises(ValueError):
            CrowdsNetwork([1, 2], p_f=1.0)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            CrowdsNetwork([1], p_f=0.75)

    def test_collaborators_must_be_members(self):
        with pytest.raises(ValueError):
            CrowdsNetwork([1, 2], p_f=0.75, collaborators={99})


class TestPaths:
    def test_path_starts_at_initiator(self, crowd):
        path, _ = crowd.send(5, random.Random(1))
        assert path[0] == 5
        assert len(path) >= 2

    def test_mean_path_length_matches_geometric(self, crowd):
        rng = random.Random(2)
        lengths = [len(crowd.send(5, rng)[0]) for _ in range(3000)]
        assert np.mean(lengths) == pytest.approx(crowd.expected_path_length(), rel=0.05)

    def test_path_function_check(self, crowd):
        path, _ = crowd.send(5, random.Random(3))
        assert crowd.path_functions(path, lambda m: True)
        dead = path[1]
        assert not crowd.path_functions(path, lambda m: m != dead)


class TestPredecessorAttack:
    def test_observation_reports_first_collaborator(self, crowd):
        rng = random.Random(4)
        for _ in range(200):
            path, obs = crowd.send(5, rng)
            if obs is None:
                assert not any(
                    m in crowd.collaborators for m in path[1:]
                )
            else:
                collab = path[obs.position]
                assert collab in crowd.collaborators
                assert path[obs.position - 1] == obs.predecessor
                assert obs.is_initiator == (obs.predecessor == 5)

    def test_posterior_matches_monte_carlo(self, crowd):
        """Reiter–Rubin closed form vs simulation: conditioned on *any*
        first-collaborator observation, the predecessor is the
        initiator with probability ``1 - p_f (n-c-1)/n`` (the loop-back
        term is why it is n-c-1, not n-c)."""
        rng = random.Random(5)
        hits = total = 0
        honest = [m for m in crowd.members if m not in crowd.collaborators]
        for i in range(8000):
            initiator = honest[i % len(honest)]
            _, obs = crowd.send(initiator, rng)
            if obs is not None:
                total += 1
                hits += obs.is_initiator
        assert total > 2000
        assert hits / total == pytest.approx(crowd.predecessor_posterior(), abs=0.03)

    def test_probable_innocence_threshold(self):
        # p_f = 0.75 -> probable innocence iff n >= 3(c+1)
        assert not CrowdsNetwork(
            list(range(31)), 0.75, collaborators=set(range(10))
        ).probable_innocence()  # needs n >= 33
        assert CrowdsNetwork(
            list(range(31)), 0.75, collaborators=set(range(9))
        ).probable_innocence()  # needs n >= 30

    def test_suspect_distribution_sums_to_one(self, crowd):
        dist = crowd.suspect_distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert dist[0] == pytest.approx(crowd.predecessor_posterior())

    def test_more_collaborators_less_anonymity(self):
        from repro.analysis.anonymity import degree_of_anonymity

        members = list(range(100))
        degrees = []
        for c in (5, 20, 40):
            crowd = CrowdsNetwork(members, 0.75, collaborators=set(range(c)))
            degrees.append(degree_of_anonymity(crowd.suspect_distribution()))
        assert degrees == sorted(degrees, reverse=True)
