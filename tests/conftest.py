"""Shared fixtures for the test-suite.

Networks are expensive to build, so module-scoped fixtures provide
read-only overlays; tests that mutate membership build their own
(small) systems via the factory fixtures.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.system import TapSystem
from repro.pastry.network import PastryNetwork
from repro.util.rng import SeedSequenceFactory

#: ``make audit`` sets TAP_AUDIT=1: every TapSystem built through the
#: fixtures then runs the repro.obs invariant auditor after each
#: membership event and fails the test on the first violation.
AUDIT_ENABLED = os.environ.get("TAP_AUDIT", "").strip() not in ("", "0")


def _maybe_audited(system: TapSystem) -> TapSystem:
    if AUDIT_ENABLED:
        system.enable_auditing(strict=True)
    return system


@pytest.fixture()
def seeds() -> SeedSequenceFactory:
    return SeedSequenceFactory(1234)


@pytest.fixture()
def rng(seeds) -> random.Random:
    return seeds.pyrandom("test")


def build_network(num_nodes: int, seed: int = 99, **kwargs) -> PastryNetwork:
    rng = random.Random(seed)
    ids = set()
    while len(ids) < num_nodes:
        ids.add(rng.getrandbits(128))
    return PastryNetwork.build(ids, **kwargs)


@pytest.fixture(scope="module")
def network200() -> PastryNetwork:
    """A read-only 200-node overlay (do not mutate membership!)."""
    return build_network(200)


@pytest.fixture()
def small_network() -> PastryNetwork:
    """A fresh 60-node overlay safe to mutate."""
    return build_network(60, seed=7)


@pytest.fixture()
def tap_system() -> TapSystem:
    """A fresh 150-node TAP system safe to mutate."""
    return _maybe_audited(
        TapSystem.bootstrap(num_nodes=150, seed=5, replication_factor=3)
    )


@pytest.fixture()
def network_factory():
    return build_network
