"""Tests for length-prefixed serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.serialize import (
    SerializationError,
    pack_bytes,
    pack_fields,
    pack_int,
    unpack_fields,
    unpack_int,
)


class TestPackBytes:
    def test_prefix_is_big_endian_length(self):
        packed = pack_bytes(b"abc")
        assert packed[:4] == (3).to_bytes(4, "big")
        assert packed[4:] == b"abc"

    def test_empty_field(self):
        assert unpack_fields(pack_bytes(b"")) == [b""]

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            pack_bytes("text")  # type: ignore[arg-type]

    def test_accepts_bytearray(self):
        assert unpack_fields(pack_bytes(bytearray(b"xy"))) == [b"xy"]


class TestFieldsRoundtrip:
    @given(fields=st.lists(st.binary(max_size=200), max_size=8))
    def test_roundtrip(self, fields):
        blob = pack_fields(*fields)
        assert unpack_fields(blob) == fields

    @given(fields=st.lists(st.binary(max_size=50), min_size=1, max_size=5))
    def test_roundtrip_with_count(self, fields):
        blob = pack_fields(*fields)
        assert unpack_fields(blob, count=len(fields)) == fields

    def test_count_mismatch_rejected(self):
        blob = pack_fields(b"a", b"b")
        with pytest.raises(SerializationError):
            unpack_fields(blob, count=3)
        with pytest.raises(SerializationError):
            unpack_fields(blob, count=1)

    def test_truncated_length_prefix(self):
        with pytest.raises(SerializationError):
            unpack_fields(b"\x00\x00")

    def test_field_overrunning_buffer(self):
        bad = (100).to_bytes(4, "big") + b"short"
        with pytest.raises(SerializationError):
            unpack_fields(bad)

    def test_empty_buffer_is_zero_fields(self):
        assert unpack_fields(b"") == []


class TestInts:
    @given(value=st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_roundtrip_128(self, value):
        assert unpack_int(pack_int(value)) == value

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            pack_int(-1)

    def test_overflow_rejected(self):
        with pytest.raises(SerializationError):
            pack_int(1 << 128, width=16)

    def test_wrong_width_rejected(self):
        with pytest.raises(SerializationError):
            unpack_int(b"\x00" * 15)

    def test_custom_width(self):
        assert unpack_int(pack_int(300, width=2), width=2) == 300
