"""Tests for the deterministic RNG plumbing."""

import numpy as np

from repro.util.rng import SeedSequenceFactory, derive_seed, make_pyrandom, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_64_bit_range(self):
        for seed in range(50):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**64

    def test_label_types_distinguished(self):
        # repr-based: int 1 and string "1" must differ
        assert derive_seed(0, 1) != derive_seed(0, "1")


class TestGenerators:
    def test_numpy_streams_reproducible(self):
        a = make_rng(7, "s").integers(0, 1000, size=10)
        b = make_rng(7, "s").integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_numpy_streams_independent(self):
        a = make_rng(7, "s1").integers(0, 1 << 62, size=10)
        b = make_rng(7, "s2").integers(0, 1 << 62, size=10)
        assert not np.array_equal(a, b)

    def test_pyrandom_reproducible(self):
        assert make_pyrandom(7, "x").random() == make_pyrandom(7, "x").random()


class TestFactory:
    def test_child_seed_matches_function(self):
        f = SeedSequenceFactory(9)
        assert f.child("lbl") == derive_seed(9, "lbl")

    def test_spawn_independence(self):
        f = SeedSequenceFactory(9)
        child = f.spawn("sub")
        assert child.child("x") != f.child("x")

    def test_spawn_deterministic(self):
        assert (
            SeedSequenceFactory(9).spawn("sub").child("x")
            == SeedSequenceFactory(9).spawn("sub").child("x")
        )

    def test_adding_consumers_does_not_shift_streams(self):
        """The key property over sequential draws: new labels never
        perturb existing streams."""
        f = SeedSequenceFactory(3)
        before = f.numpy("topology").integers(0, 100, size=5)
        f.numpy("brand-new-consumer")  # would advance a shared stream
        after = f.numpy("topology").integers(0, 100, size=5)
        assert np.array_equal(before, after)
