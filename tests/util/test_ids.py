"""Tests for id arithmetic — the semantics every substrate shares."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ids import (
    ID_BITS,
    ID_SPACE,
    closest_ids,
    closest_in_sorted,
    closest_index,
    hex_to_id,
    id_digit,
    id_to_hex,
    numeric_distance,
    random_id,
    ring_distance,
    shared_prefix_digits,
)

ids_st = st.integers(min_value=0, max_value=ID_SPACE - 1)


class TestRingDistance:
    def test_zero_for_equal(self):
        assert ring_distance(42, 42) == 0

    def test_simple(self):
        assert ring_distance(10, 13) == 3

    def test_wraps_around(self):
        assert ring_distance(0, ID_SPACE - 1) == 1

    def test_max_is_half_space(self):
        assert ring_distance(0, ID_SPACE // 2) == ID_SPACE // 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ring_distance(ID_SPACE, 0)
        with pytest.raises(ValueError):
            ring_distance(-1, 0)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            ring_distance(1.5, 0)

    @given(a=ids_st, b=ids_st)
    def test_symmetry(self, a, b):
        assert ring_distance(a, b) == ring_distance(b, a)

    @given(a=ids_st, b=ids_st, c=ids_st)
    @settings(max_examples=200)
    def test_triangle_inequality(self, a, b, c):
        assert ring_distance(a, c) <= ring_distance(a, b) + ring_distance(b, c)

    @given(a=ids_st, b=ids_st, shift=ids_st)
    def test_translation_invariance(self, a, b, shift):
        assert ring_distance(a, b) == ring_distance(
            (a + shift) % ID_SPACE, (b + shift) % ID_SPACE
        )


class TestNumericDistance:
    def test_no_wrap(self):
        assert numeric_distance(0, ID_SPACE - 1) == ID_SPACE - 1

    @given(a=ids_st, b=ids_st)
    def test_at_least_ring(self, a, b):
        assert numeric_distance(a, b) >= ring_distance(a, b)


class TestClosestIds:
    def test_single_closest(self):
        assert closest_ids([10, 20, 30], 19) == [20]

    def test_ordering_closest_first(self):
        assert closest_ids([10, 20, 30], 19, count=3) == [20, 10, 30]

    def test_tie_breaks_toward_smaller_id(self):
        # 15 is equidistant from 10 and 20.
        assert closest_ids([20, 10], 15, count=2) == [10, 20]

    def test_wraparound_closest(self):
        assert closest_ids([5, ID_SPACE - 5], 1, count=1) == [ID_SPACE - 5] or \
            closest_ids([5, ID_SPACE - 5], 1, count=1) == [5]
        # distance(5,1)=4, distance(ID_SPACE-5,1)=6 -> 5 wins
        assert closest_ids([5, ID_SPACE - 5], 1, count=1) == [5]

    def test_count_zero(self):
        assert closest_ids([1, 2, 3], 2, count=0) == []

    def test_count_negative_rejected(self):
        with pytest.raises(ValueError):
            closest_ids([1], 0, count=-1)

    def test_count_exceeding_population(self):
        assert len(closest_ids([1, 2], 0, count=5)) == 2


class TestClosestInSorted:
    @given(
        pool=st.lists(ids_st, min_size=1, max_size=40, unique=True),
        key=ids_st,
        count=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=200)
    def test_matches_reference(self, pool, key, count):
        """The O(log n) sorted variant must agree with the O(n log n)
        reference on ids, order and ties."""
        sorted_pool = sorted(pool)
        count = min(count, len(pool))
        assert closest_in_sorted(sorted_pool, key, count) == closest_ids(
            pool, key, count
        )

    def test_closest_index_empty_rejected(self):
        with pytest.raises(ValueError):
            closest_index([], 5)

    def test_closest_index_wraps(self):
        pool = [10, ID_SPACE - 10]
        assert pool[closest_index(pool, 3)] == 10
        assert pool[closest_index(pool, ID_SPACE - 3)] == ID_SPACE - 10


class TestHexRoundtrip:
    @given(value=ids_st)
    def test_roundtrip(self, value):
        assert hex_to_id(id_to_hex(value)) == value

    def test_fixed_width(self):
        assert len(id_to_hex(0)) == 32
        assert len(id_to_hex(ID_SPACE - 1)) == 32


class TestDigits:
    def test_most_significant_first(self):
        value = 0xA << (ID_BITS - 4)
        assert id_digit(value, 0) == 0xA
        assert id_digit(value, 1) == 0

    def test_row_out_of_range(self):
        with pytest.raises(ValueError):
            id_digit(0, 32)
        with pytest.raises(ValueError):
            id_digit(0, -1)

    def test_b2_digits(self):
        value = 0b11 << (ID_BITS - 2)
        assert id_digit(value, 0, bits_per_digit=2) == 0b11

    @given(value=ids_st)
    def test_digits_reassemble(self, value):
        digits = [id_digit(value, r) for r in range(ID_BITS // 4)]
        rebuilt = 0
        for d in digits:
            rebuilt = (rebuilt << 4) | d
        assert rebuilt == value


class TestSharedPrefix:
    def test_identical_full_length(self):
        assert shared_prefix_digits(7, 7) == ID_BITS // 4

    def test_differs_at_first_digit(self):
        a = 0x1 << (ID_BITS - 4)
        b = 0x2 << (ID_BITS - 4)
        assert shared_prefix_digits(a, b) == 0

    @given(a=ids_st, b=ids_st)
    def test_symmetric(self, a, b):
        assert shared_prefix_digits(a, b) == shared_prefix_digits(b, a)

    @given(a=ids_st, b=ids_st)
    def test_consistent_with_digits(self, a, b):
        r = shared_prefix_digits(a, b)
        for row in range(r):
            assert id_digit(a, row) == id_digit(b, row)
        if r < ID_BITS // 4:
            assert id_digit(a, r) != id_digit(b, r)


class TestRandomId:
    def test_deterministic_per_seed(self):
        assert random_id(random.Random(1)) == random_id(random.Random(1))

    def test_in_range(self):
        rng = random.Random(2)
        for _ in range(100):
            assert 0 <= random_id(rng) < ID_SPACE
