"""Tests for the simultaneous-failure model."""

import random

import pytest

from repro.adversary.failures import FailureModel, tunnel_functions


class TestSampling:
    def test_exact_count(self):
        model = FailureModel(0.25)
        victims = model.sample(list(range(100)), random.Random(1))
        assert len(victims) == 25
        assert len(set(victims)) == 25

    def test_zero_fraction(self):
        assert FailureModel(0.0).sample(list(range(10)), random.Random(1)) == []

    def test_full_fraction(self):
        victims = FailureModel(1.0).sample(list(range(10)), random.Random(1))
        assert sorted(victims) == list(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(1.5)
        with pytest.raises(ValueError):
            FailureModel(-0.1)

    def test_positive_fraction_rounding_to_zero_warns(self):
        # p=0.01 over 10 nodes rounds to 0 victims: the experiment
        # would silently measure the zero-failure regime
        model = FailureModel(0.01)
        with pytest.warns(RuntimeWarning, match="rounds to 0 victims"):
            assert model.sample(list(range(10)), random.Random(1)) == []

    def test_positive_fraction_rounding_to_zero_strict_raises(self):
        model = FailureModel(0.01, strict=True)
        with pytest.raises(ValueError, match="rounds to 0 victims"):
            model.sample(list(range(10)), random.Random(1))

    def test_zero_fraction_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert FailureModel(0.0).sample(
                list(range(10)), random.Random(1)
            ) == []

    def test_empty_population_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert FailureModel(0.5).sample([], random.Random(1)) == []


class TestApply:
    def test_fails_sampled_nodes(self, tap_system):
        model = FailureModel(0.2)
        before = tap_system.network.size
        victims = model.apply(tap_system, random.Random(2))
        assert tap_system.network.size == before - len(victims)
        assert all(not tap_system.network.is_alive(v) for v in victims)

    def test_returns_actual_victims_with_repair(self, tap_system):
        """``apply`` must report the nodes it really failed in the
        repair regime too, so accounting can trust the return value."""
        model = FailureModel(0.1)
        before = tap_system.network.size
        victims = model.apply(tap_system, random.Random(4), repair_after=True)
        assert victims, "expected a non-empty victim set"
        assert tap_system.network.size == before - len(victims)
        assert all(not tap_system.network.is_alive(v) for v in victims)


class TestTunnelFunctions:
    def test_healthy_tunnel_functions(self, tap_system):
        alice = tap_system.tap_node(tap_system.random_node_id("a"))
        tap_system.deploy_thas(alice, count=6)
        tunnel = tap_system.form_tunnel(alice, length=3)
        assert tunnel_functions(tap_system, tunnel)

    def test_hop_failover_still_functions(self, tap_system):
        alice = tap_system.tap_node(tap_system.random_node_id("a"))
        tap_system.deploy_thas(alice, count=6)
        tunnel = tap_system.form_tunnel(alice, length=3)
        tap_system.fail_node(
            tap_system.network.closest_alive(tunnel.hops[0].hop_id)
        )
        assert tunnel_functions(tap_system, tunnel)

    def test_lost_anchor_breaks_tunnel(self, tap_system):
        alice = tap_system.tap_node(tap_system.random_node_id("a"))
        tap_system.deploy_thas(alice, count=6)
        tunnel = tap_system.form_tunnel(alice, length=3)
        holders = list(tap_system.store.holders(tunnel.hops[2].hop_id))
        tap_system.fail_nodes(holders, repair_after=False)
        assert not tunnel_functions(tap_system, tunnel)

    def test_predicate_agrees_with_forwarder(self, tap_system):
        """The bulk predicate and the cryptographic engine must agree
        on whether a damaged tunnel works."""
        alice = tap_system.tap_node(tap_system.random_node_id("a"))
        tap_system.deploy_thas(alice, count=8)
        tunnel = tap_system.form_tunnel(alice, length=3)
        model = FailureModel(0.3)
        model.apply(tap_system, random.Random(3), repair_after=False)
        predicted = tunnel_functions(tap_system, tunnel)
        if tap_system.network.is_alive(alice.node_id):
            trace = tap_system.send(alice, tunnel, 42, b"x")
            assert trace.success == predicted
