"""Tests for the colluding-adversary knowledge model."""

import pytest

from repro.adversary.collusion import ColludingAdversary


@pytest.fixture()
def system_with_adversary(tap_system):
    malicious = set(tap_system.network.alive_ids[::10])  # every 10th node
    adversary = ColludingAdversary(malicious)
    adversary.attach(tap_system.store)
    return tap_system, adversary


class TestKnowledgeAcquisition:
    def test_learns_anchors_replicated_onto_coalition(self, system_with_adversary):
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        report = system.deploy_thas(alice, count=10)
        for tha in report.deployed:
            holders = system.store.holders(tha.hop_id)
            expected = bool(holders & adversary.malicious_ids)
            assert adversary.knows(tha.hop_id) == expected

    def test_knowledge_is_monotone_under_churn(self, system_with_adversary):
        """Once disclosed, always disclosed — even if the malicious
        holder later drops out of the replica set."""
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        report = system.deploy_thas(alice, count=10)
        known_before = set(adversary.known_hopids)
        # Churn: fail some benign nodes (with repair).
        benign = [
            nid for nid in system.network.alive_ids
            if not adversary.is_malicious(nid)
        ][:10]
        for nid in benign:
            system.fail_node(nid)
        assert known_before <= adversary.known_hopids

    def test_repair_onto_malicious_node_discloses(self, system_with_adversary):
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        report = system.deploy_thas(alice, count=10)
        # Find an undisclosed anchor, then fail its benign holders one
        # at a time until a malicious node inherits it (or we run out).
        target = next(
            (t for t in report.deployed if not adversary.knows(t.hop_id)), None
        )
        if target is None:
            pytest.skip("all anchors disclosed already (unlucky seed)")
        for _ in range(30):
            if adversary.knows(target.hop_id):
                break
            holders = [
                h for h in system.store.holders(target.hop_id)
                if system.network.is_alive(h)
            ]
            system.fail_node(holders[0])
        assert adversary.knows(target.hop_id)

    def test_attach_absorbs_existing_state(self, tap_system):
        alice = tap_system.tap_node(tap_system.random_node_id("a"))
        report = tap_system.deploy_thas(alice, count=8)
        # Adversary shows up late: must still know whatever sits on it.
        malicious = set(tap_system.network.alive_ids[::7])
        late = ColludingAdversary(malicious)
        late.attach(tap_system.store)
        for tha in report.deployed:
            if tap_system.store.holders(tha.hop_id) & malicious:
                assert late.knows(tha.hop_id)


class TestCorruptionPredicates:
    def test_tunnel_corrupted_requires_all_hops(self, system_with_adversary):
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=8)
        tunnel = system.form_tunnel(alice, length=3)
        known = [adversary.knows(h.hop_id) for h in tunnel.hops]
        assert adversary.tunnel_corrupted(tunnel) == all(known)

    def test_force_corruption(self, system_with_adversary):
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=6)
        tunnel = system.form_tunnel(alice, length=3)
        for h in tunnel.hops:
            adversary.known_hopids.add(h.hop_id)
        assert adversary.tunnel_corrupted(tunnel)

    def test_first_and_tail_control(self, system_with_adversary):
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=6)
        tunnel = system.form_tunnel(alice, length=3)
        first_root = system.network.closest_alive(tunnel.hops[0].hop_id)
        tail_root = system.network.closest_alive(tunnel.hops[-1].hop_id)
        expected = (
            first_root in adversary.malicious_ids
            and tail_root in adversary.malicious_ids
        )
        assert adversary.first_and_tail_controlled(system, tunnel) == expected

    def test_knowledge_fraction(self, system_with_adversary):
        system, adversary = system_with_adversary
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=12)
        tunnels = [system.form_tunnel(alice, length=3) for _ in range(2)]
        frac = adversary.knowledge_fraction(tunnels)
        manual = sum(adversary.tunnel_corrupted(t) for t in tunnels) / 2
        assert frac == manual

    def test_knowledge_fraction_empty(self, system_with_adversary):
        _, adversary = system_with_adversary
        assert adversary.knowledge_fraction([]) == 0.0
