"""Tests for the timing-analysis adversary (§6 case 2)."""

import pytest

from repro.adversary.timing import (
    Claim,
    TimingAnalysisAdversary,
    TransmissionTruth,
    evaluate_claims,
)


@pytest.fixture()
def adversary():
    return TimingAnalysisAdversary(malicious_ids={10, 20})


class TestTaps:
    def test_metadata_tap_filters_coalition(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)  # to coalition: kept
        adversary.tap(2.0, 5, 6, 100.0)  # honest to honest: dropped
        adversary.tap(3.0, 20, 7, 100.0)  # from coalition: kept
        assert len(adversary.events) == 2

    def test_content_tap_filters_coalition(self, adversary):
        adversary.content_tap(1.0, 10, 999, 100.0)
        adversary.content_tap(2.0, 7, 999, 100.0)  # honest peel: unseen
        assert len(adversary.reveals) == 1

    def test_reset(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)
        adversary.content_tap(1.0, 10, 9, 100.0)
        adversary.reset()
        assert not adversary.events and not adversary.reveals


class TestClaims:
    def test_pairs_entry_with_reveal(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)  # initiator 5 enters at hop 10
        adversary.content_tap(3.0, 20, 777, 100.0)  # tail reveals dest
        claims = adversary.claims(window_seconds=5.0)
        assert claims == [Claim(5, 777, 1.0, 3.0)]

    def test_window_enforced(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)
        adversary.content_tap(100.0, 20, 777, 100.0)
        assert adversary.claims(window_seconds=5.0) == []

    def test_size_mismatch_rejected(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)
        adversary.content_tap(2.0, 20, 777, 999.0)
        assert adversary.claims(window_seconds=5.0) == []

    def test_size_tolerance(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)
        adversary.content_tap(2.0, 20, 777, 110.0)
        assert adversary.claims(window_seconds=5.0, size_tolerance_bits=20.0)

    def test_earliest_entry_wins(self, adversary):
        """The first coalition touchpoint is the initiator candidate."""
        adversary.tap(1.0, 5, 10, 100.0)  # true initiator send
        adversary.tap(2.0, 8, 20, 100.0)  # later middle-hop arrival
        adversary.content_tap(3.0, 20, 777, 100.0)
        claims = adversary.claims(window_seconds=10.0)
        assert claims[0].initiator == 5

    def test_entries_consumed_once(self, adversary):
        adversary.tap(1.0, 5, 10, 100.0)
        adversary.content_tap(2.0, 20, 777, 100.0)
        adversary.content_tap(3.0, 20, 888, 100.0)
        claims = adversary.claims(window_seconds=10.0)
        assert len(claims) == 1  # one entry cannot explain two reveals

    def test_entry_must_precede_reveal(self, adversary):
        adversary.tap(5.0, 5, 10, 100.0)
        adversary.content_tap(1.0, 20, 777, 100.0)
        assert adversary.claims(window_seconds=10.0) == []

    def test_destination_resolver_applied(self):
        adv = TimingAnalysisAdversary(
            malicious_ids={10}, resolve_destination=lambda key: key + 1
        )
        adv.tap(1.0, 5, 10, 100.0)
        adv.content_tap(2.0, 10, 100, 100.0)
        assert adv.claims(window_seconds=5.0)[0].destination == 101

    def test_entries_from_coalition_nodes_excluded(self, adversary):
        """Coalition-internal transfers are not initiator evidence."""
        adversary.tap(1.0, 20, 10, 100.0)  # coalition -> coalition
        adversary.content_tap(2.0, 20, 777, 100.0)
        assert adversary.claims(window_seconds=5.0) == []


class TestEvaluation:
    TRUTHS = [
        TransmissionTruth(initiator=5, destination=777, started_at=0.0, finished_at=10.0),
        TransmissionTruth(initiator=6, destination=888, started_at=0.0, finished_at=10.0),
    ]

    def test_perfect(self):
        claims = [Claim(5, 777, 1.0, 3.0), Claim(6, 888, 1.0, 3.0)]
        score = evaluate_claims(claims, self.TRUTHS)
        assert score == {"claims": 2.0, "precision": 1.0, "recall": 1.0}

    def test_wrong_initiator_not_counted(self):
        score = evaluate_claims([Claim(9, 777, 1.0, 3.0)], self.TRUTHS)
        assert score["precision"] == 0.0 and score["recall"] == 0.0

    def test_time_bounds_checked(self):
        score = evaluate_claims([Claim(5, 777, 50.0, 60.0)], self.TRUTHS)
        assert score["precision"] == 0.0

    def test_empty_claims(self):
        score = evaluate_claims([], self.TRUTHS)
        assert score["precision"] == 0.0 and score["recall"] == 0.0

    def test_partial(self):
        claims = [Claim(5, 777, 1.0, 3.0), Claim(9, 999, 1.0, 3.0)]
        score = evaluate_claims(claims, self.TRUTHS)
        assert score["precision"] == 0.5
        assert score["recall"] == 0.5


class TestEndToEnd:
    def test_attack_on_emulation(self):
        """Full-stack: a coalition controlling first+tail of a hinted
        tunnel identifies (initiator, destination) from timing."""
        from repro.adversary.timing import TimingAnalysisAdversary
        from repro.core.emulation import TapEmulation
        from repro.core.system import TapSystem
        from repro.simnet.topology import Topology

        system = TapSystem.bootstrap(num_nodes=200, seed=61)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=8)
        tunnel = system.form_tunnel(alice, length=3, use_hints=True)

        first = system.network.closest_alive(tunnel.hops[0].hop_id)
        tail = system.network.closest_alive(tunnel.hops[-1].hop_id)
        adversary = TimingAnalysisAdversary(
            {first, tail}, resolve_destination=system.network.closest_alive
        )

        emu = TapEmulation.from_system(system, topology=Topology(seed=62))
        emu.taps.append(adversary.tap)
        emu.content_taps.append(adversary.content_tap)

        trace = emu.send_through_tunnel(alice, tunnel, 4242, b"x", size_bits=1e6)
        emu.simulator.run()
        assert trace.delivered

        claims = adversary.claims(window_seconds=60.0)
        truths = [TransmissionTruth(alice.node_id, trace.destination,
                                    trace.started_at, trace.finished_at)]
        score = evaluate_claims(claims, truths)
        assert score["recall"] == 1.0
