"""Tests for the churn process (Figure 5's object-level machinery)."""

import random

import pytest

from repro.adversary.churn import ChurnProcess
from repro.adversary.collusion import ColludingAdversary


@pytest.fixture()
def setup(tap_system):
    malicious = set(tap_system.network.alive_ids[::10])
    adversary = ColludingAdversary(malicious)
    adversary.attach(tap_system.store)
    return tap_system, adversary


class TestChurnStep:
    def test_population_roughly_constant(self, setup):
        system, adversary = setup
        churn = ChurnProcess(leaves_per_unit=5, joins_per_unit=5)
        before = system.network.size
        stats = churn.step(system, adversary, random.Random(901))
        assert stats["departed"] == 5 and stats["joined"] == 5
        assert system.network.size == before

    def test_malicious_never_leave(self, setup):
        system, adversary = setup
        churn = ChurnProcess(leaves_per_unit=10, joins_per_unit=10)
        for step in range(3):
            churn.step(system, adversary, random.Random(902 + step))
        for nid in adversary.malicious_ids:
            assert system.network.is_alive(nid)

    def test_store_invariants_preserved(self, setup):
        system, adversary = setup
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=8)
        churn = ChurnProcess(leaves_per_unit=8, joins_per_unit=8)
        for step in range(3):
            churn.step(system, adversary, random.Random(903 + step))
        assert system.store.verify_invariants() == []

    def test_tunnels_survive_churn(self, setup):
        """TAP's headline property under realistic churn: a tunnel
        formed before several churn units still works."""
        system, adversary = setup
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=8)
        tunnel = system.form_tunnel(alice, length=3)
        churn = ChurnProcess(leaves_per_unit=8, joins_per_unit=8)
        rng = random.Random(904)
        for _ in range(4):
            churn.step(system, adversary, rng)
        if system.network.is_alive(alice.node_id):
            trace = system.send(alice, tunnel, 42, b"x")
            assert trace.success, trace.failure_reason

    def test_adversary_knowledge_monotone(self, setup):
        system, adversary = setup
        alice = system.tap_node(system.random_node_id("a"))
        system.deploy_thas(alice, count=8)
        churn = ChurnProcess(leaves_per_unit=8, joins_per_unit=8)
        rng = random.Random(905)
        sizes = [len(adversary.known_hopids)]
        for _ in range(4):
            churn.step(system, adversary, rng)
            sizes.append(len(adversary.known_hopids))
        assert sizes == sorted(sizes)
