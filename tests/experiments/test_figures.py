"""Shape tests for every figure: the qualitative claims the paper makes
must hold in the regenerated data (fast configs)."""

import pytest

from repro.experiments import (
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    run_fig2,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    series,
)


@pytest.fixture(scope="module")
def fig2_rows():
    return run_fig2(Fig2Config.fast())


@pytest.fixture(scope="module")
def fig3_rows():
    return run_fig3(Fig3Config.fast())


@pytest.fixture(scope="module")
def fig5_rows():
    return run_fig5(Fig5Config.fast())


@pytest.fixture(scope="module")
def fig6_rows():
    return run_fig6(Fig6Config.fast())


class TestFig2:
    def test_tap_far_below_current(self, fig2_rows):
        by_scheme = series(fig2_rows, "failed_fraction", "failed_tunnels")
        for (p, cur), (_, tap) in zip(by_scheme["current"], by_scheme["tap-k3"]):
            if 0.1 <= p <= 0.4:
                assert tap < cur / 2
            elif p > 0.4:
                # At extreme failure rates the gap narrows but TAP
                # must still dominate.
                assert tap < cur

    def test_k5_below_k3(self, fig2_rows):
        by_scheme = series(fig2_rows, "failed_fraction", "failed_tunnels")
        for (_, k3), (_, k5) in zip(by_scheme["tap-k3"], by_scheme["tap-k5"]):
            assert k5 <= k3

    def test_current_matches_theory(self, fig2_rows):
        for row in fig2_rows:
            if row["scheme"] == "current":
                assert row["failed_tunnels"] == pytest.approx(
                    row["expected"], abs=0.06
                )

    def test_tap_matches_theory(self, fig2_rows):
        for row in fig2_rows:
            if row["scheme"].startswith("tap"):
                assert row["failed_tunnels"] == pytest.approx(
                    row["expected"], abs=0.06
                )

    def test_current_monotone_in_p(self, fig2_rows):
        points = series(fig2_rows, "failed_fraction", "failed_tunnels")["current"]
        values = [v for _, v in points]
        assert values == sorted(values)


class TestFig3:
    def test_monotone_in_malicious_fraction(self, fig3_rows):
        values = [r["corrupted_tunnels"] for r in fig3_rows]
        assert values == sorted(values)

    def test_no_significant_corruption_even_at_30pct(self, fig3_rows):
        """The paper's wording: no significant corruption even at p=0.3."""
        worst = max(r["corrupted_tunnels"] for r in fig3_rows)
        assert worst < 0.2

    def test_matches_theory(self, fig3_rows):
        for row in fig3_rows:
            assert row["corrupted_tunnels"] == pytest.approx(
                row["expected"], abs=0.05
            )


class TestFig4:
    def test_4a_increasing_in_k(self):
        rows = run_fig4a(Fig4Config.fast())
        values = [r["corrupted_tunnels"] for r in rows]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_4b_decreasing_in_length(self):
        rows = run_fig4b(Fig4Config.fast())
        values = [r["corrupted_tunnels"] for r in rows]
        assert values == sorted(values, reverse=True)
        assert values[0] > values[-1]

    def test_4b_knee_at_five(self):
        """Beyond l=5 the marginal gain is small (paper: 'the tunnel
        length of 5 catches the knee of the curve')."""
        config = Fig4Config.fast()
        config = Fig4Config(
            num_nodes=config.num_nodes,
            num_tunnels=config.num_tunnels,
            num_seeds=config.num_seeds,
            tunnel_lengths=(1, 3, 5, 7, 9),
        )
        rows = {r["tunnel_length"]: r["expected"] for r in run_fig4b(config)}
        drop_to_5 = rows[1] - rows[5]
        drop_after_5 = rows[5] - rows[9]
        assert drop_to_5 > 10 * drop_after_5


class TestFig5:
    def test_unrefreshed_grows(self, fig5_rows):
        unref = series(fig5_rows, "time", "corrupted_tunnels")["unrefreshed"]
        assert unref[-1][1] >= unref[0][1]

    def test_refreshed_stays_near_static_level(self, fig5_rows):
        static = fig5_rows[0]["static_expected"]
        ref = series(fig5_rows, "time", "corrupted_tunnels")["refreshed"]
        for _, value in ref:
            assert value <= static + 0.05

    def test_unrefreshed_dominates_refreshed_at_end(self):
        """With heavy churn the separation must be decisive: corruption
        is an all-l-hops event, so the effect needs enough tunnels and
        accumulated disclosure to rise above noise."""
        config = Fig5Config(
            num_nodes=1_000, num_tunnels=2_000, churn_per_unit=100,
            time_units=15, num_seeds=2,
        )
        rows = run_fig5(config)
        by = series(rows, "time", "corrupted_tunnels")
        assert by["unrefreshed"][-1][1] > 3 * max(
            by["refreshed"][-1][1], 1.0 / config.num_tunnels
        )


class TestFig6:
    def test_ordering_overt_opt_basic(self, fig6_rows):
        by_n = {}
        for row in fig6_rows:
            by_n.setdefault(row["num_nodes"], {})[row["scheme"]] = row[
                "transfer_time_s"
            ]
        for n, schemes in by_n.items():
            assert schemes["overt"] < schemes["tap-opt-l3"]
            assert schemes["tap-opt-l3"] < schemes["tap-basic-l3"]
            assert schemes["tap-opt-l5"] < schemes["tap-basic-l5"]

    def test_longer_tunnel_costs_more(self, fig6_rows):
        for row3 in fig6_rows:
            if row3["scheme"] == "tap-basic-l3":
                row5 = next(
                    r for r in fig6_rows
                    if r["num_nodes"] == row3["num_nodes"]
                    and r["scheme"] == "tap-basic-l5"
                )
                assert row5["transfer_time_s"] > row3["transfer_time_s"]

    def test_basic_grows_with_network_size(self, fig6_rows):
        points = series(fig6_rows, "num_nodes", "transfer_time_s")["tap-basic-l5"]
        assert points[-1][1] > points[0][1]

    def test_opt_insensitive_to_network_size(self, fig6_rows):
        """TAP_opt takes l+2 direct hops regardless of N (no churn)."""
        points = series(fig6_rows, "num_nodes", "transfer_time_s")["tap-opt-l5"]
        values = [v for _, v in points]
        assert max(values) - min(values) < 0.25 * min(values)

    def test_optimisation_factor_substantial(self, fig6_rows):
        """The paper: optimisation 'dramatically' reduces the penalty."""
        last_n = max(r["num_nodes"] for r in fig6_rows)
        basic = next(
            r["transfer_time_s"] for r in fig6_rows
            if r["num_nodes"] == last_n and r["scheme"] == "tap-basic-l5"
        )
        opt = next(
            r["transfer_time_s"] for r in fig6_rows
            if r["num_nodes"] == last_n and r["scheme"] == "tap-opt-l5"
        )
        assert basic / opt > 1.5
