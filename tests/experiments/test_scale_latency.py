"""Shape + determinism tests for the batched scale-latency experiment."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.scale_latency import (
    ScaleLatencyConfig,
    run_scale_latency,
    summarize_rows,
)
from repro.obs import EventTrace, MetricsRegistry
from repro.perf import rows_digest

TINY = ScaleLatencyConfig(
    num_nodes=500,
    num_transfers=80,
    tunnel_lengths=(2, 3),
    churn_rounds=2,
    verify_routes=3,
    num_seeds=2,
    seed=23,
    telemetry_latency_samples=16,
)


class TestScaleLatency:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scale_latency(TINY)

    def test_row_shape(self, rows):
        arms = [r for r in rows if r["figure"] == "scale-latency"]
        verify = [r for r in rows if r["figure"] == "scale-latency-verify"]
        per_rep = 1 + len(TINY.tunnel_lengths)
        assert len(arms) == TINY.num_seeds * per_rep
        assert len(verify) == TINY.num_seeds
        for row in arms:
            assert row["transfers"] == TINY.num_transfers
            assert 0.0 <= row["completion"] <= 1.0
            assert row["p10_s"] <= row["p50_s"] <= row["p90_s"]
            if row["arm"] == "direct":
                assert row["tunnel_length"] == 0
            else:
                assert row["arm"] == f"tunnel-l{row['tunnel_length']}"
                assert row["hop_stretch"] > 0

    def test_routes_complete_and_agree(self, rows):
        for row in rows:
            if row["figure"] == "scale-latency":
                assert row["completion"] == 1.0
            if row["figure"] == "scale-latency-verify":
                assert row["routes"] == TINY.verify_routes
                assert row["agree"] == row["routes"]

    def test_fig6_trend(self, rows):
        """Tunnels pay latency proportional to their hop stretch: the
        trend ratio sits near 1 and longer tunnels cost more (fig6)."""
        for rep in range(TINY.num_seeds):
            arms = {
                r["arm"]: r
                for r in rows
                if r["figure"] == "scale-latency" and r["rep"] == rep
            }
            direct = arms["direct"]
            prev = direct["mean_s"]
            for length in TINY.tunnel_lengths:
                tun = arms[f"tunnel-l{length}"]
                assert tun["mean_hops"] > direct["mean_hops"]
                assert tun["mean_s"] > prev
                prev = tun["mean_s"]
                assert 0.8 < tun["trend_ratio"] < 1.2

    def test_digest_is_worker_independent(self, rows):
        assert rows_digest(run_scale_latency(TINY, workers=2)) == (
            rows_digest(rows)
        )

    def test_fast_config_is_smaller(self):
        fast = ScaleLatencyConfig.fast()
        assert fast.num_nodes < ScaleLatencyConfig().num_nodes


class TestTelemetry:
    """Sampled telemetry must observe without perturbing the rows."""

    @pytest.fixture(scope="class")
    def telemetry(self):
        metrics = MetricsRegistry()
        events = EventTrace()
        rows = run_scale_latency(TINY, metrics=metrics, event_trace=events)
        return rows, metrics, events

    def test_rows_identical_with_telemetry_off(self, telemetry):
        rows, _, _ = telemetry
        assert rows_digest(rows) == rows_digest(run_scale_latency(TINY))

    def test_expected_instruments_present(self, telemetry):
        _, metrics, _ = telemetry
        snap = metrics.snapshot()
        per_rep = TINY.num_transfers * (1 + len(TINY.tunnel_lengths))
        assert snap["scale_latency.transfers"]["value"] == (
            TINY.num_seeds * per_rep
        )
        assert snap["scale_latency.direct_completion"]["value"] == 1.0
        assert snap["scale_latency.direct_s"]["count"] > 0
        for length in TINY.tunnel_lengths:
            assert snap[f"scale_latency.tunnel_l{length}_s"]["count"] > 0

    def test_arm_events_recorded(self, telemetry):
        _, _, events = telemetry
        arms = list(events.events("scale_latency.arm"))
        assert len(arms) == TINY.num_seeds * (1 + len(TINY.tunnel_lengths))
        assert all(e.fields["completion"] == 1.0 for e in arms)

    def test_telemetry_worker_independent(self, telemetry):
        _, metrics, events = telemetry
        m2 = MetricsRegistry()
        e2 = EventTrace()
        run_scale_latency(TINY, workers=2, metrics=m2, event_trace=e2)
        assert m2.to_json() == metrics.to_json()
        assert e2.to_jsonl() == events.to_jsonl()


class TestSummarizeRows:
    def test_summary_keys(self):
        rows = run_scale_latency(TINY)
        summary = summarize_rows(rows)
        assert set(summary) == {
            "scale_latency.route_completion",
            "scale_latency.median_tunnel_latency_s",
            "scale_latency.hop_stretch",
            "scale_latency.trend_ratio",
            "scale_latency.route_agreement",
        }
        assert summary["scale_latency.route_completion"] == 1.0
        assert summary["scale_latency.route_agreement"] == 1.0
        assert summary["scale_latency.hop_stretch"] > 1.0
        assert 0.8 < summary["scale_latency.trend_ratio"] < 1.2
        assert summary["scale_latency.median_tunnel_latency_s"] > 0.0

    def test_empty_rows(self):
        assert summarize_rows([]) == {}


class TestMillionKnobs:
    """Chunked routing and shared-memory sharding must leave the rows
    byte-identical; million configs alias their SLOs under scale_1m."""

    def test_million_config_shape(self):
        cfg = ScaleLatencyConfig.million()
        assert cfg.num_nodes == 1_000_000
        assert cfg.use_shared_memory
        assert cfg.chunk_size is not None
        assert cfg.verify_routes > 0

    def test_rows_invariant_to_chunk_and_shm(self):
        flat = rows_digest(run_scale_latency(TINY))
        knobs = dataclasses.replace(
            TINY, chunk_size=13, use_shared_memory=True
        )
        assert rows_digest(run_scale_latency(knobs, workers=2)) == flat

    def test_volatile_out_reports_restore_and_segments(self):
        cfg = dataclasses.replace(TINY, use_shared_memory=True)
        volatile = {}
        run_scale_latency(cfg, volatile_out=volatile)
        assert len(volatile["trials"]) == TINY.num_seeds
        segments = volatile["shared_memory"]
        assert segments["segments"] == 1
        assert segments["segment_nbytes"] == 17 * TINY.num_nodes

    def test_summary_aliases_scale_1m_for_million_configs(self):
        rows = run_scale_latency(TINY)
        plain = summarize_rows(rows, config=TINY)
        assert not any(k.startswith("scale_1m.") for k in plain)
        million = summarize_rows(
            rows, config=dataclasses.replace(TINY, num_nodes=1_000_000)
        )
        assert million["scale_1m.route_completion"] == (
            million["scale_latency.route_completion"]
        )
        assert million["scale_1m.route_agreement"] == 1.0
