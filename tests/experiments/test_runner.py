"""Tests for the table/series rendering utilities and configs."""

from dataclasses import FrozenInstanceError

import pytest

from repro.experiments.config import Fig2Config, Fig6Config, scaled
from repro.experiments.runner import pivot, render_table, rows_to_csv, series


ROWS = [
    {"x": 1, "scheme": "a", "y": 0.5},
    {"x": 2, "scheme": "a", "y": 0.7},
    {"x": 1, "scheme": "b", "y": 0.1},
]


class TestSeries:
    def test_groups_and_sorts(self):
        out = series(ROWS, "x", "y")
        assert out == {"a": [(1, 0.5), (2, 0.7)], "b": [(1, 0.1)]}

    def test_missing_scheme_key(self):
        out = series([{"x": 1, "y": 2.0}], "x", "y")
        assert out == {"value": [(1, 2.0)]}


class TestRenderTable:
    def test_contains_headers_and_values(self):
        text = render_table(ROWS, title="demo")
        assert "demo" in text
        assert "scheme" in text
        assert "0.5000" in text

    def test_column_subset(self):
        text = render_table(ROWS, columns=["x", "y"])
        assert "scheme" not in text

    def test_empty(self):
        assert render_table([]) == "(no rows)\n"

    def test_alignment(self):
        lines = render_table(ROWS).splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all data lines equal width


class TestCsv:
    def test_header_and_rows(self):
        text = rows_to_csv(ROWS)
        lines = text.strip().split("\n")
        assert lines[0] == "x,scheme,y"
        assert lines[1] == "1,a,0.5"
        assert len(lines) == 4

    def test_empty(self):
        assert rows_to_csv([]) == ""


class TestPivot:
    def test_wide_format(self):
        wide = pivot(ROWS, index="x", column="scheme", value="y")
        assert wide == [{"x": 1, "a": 0.5, "b": 0.1}, {"x": 2, "a": 0.7}]


class TestConfigs:
    def test_frozen(self):
        config = Fig2Config()
        with pytest.raises(FrozenInstanceError):
            config.num_nodes = 1  # type: ignore[misc]

    def test_paper_defaults(self):
        config = Fig2Config()
        assert config.num_nodes == 10_000
        assert config.num_tunnels == 5_000
        assert config.tunnel_length == 5
        assert config.replication_factors == (3, 5)

    def test_fig6_paper_defaults(self):
        config = Fig6Config()
        assert config.file_bits == 2_000_000.0
        assert config.bandwidth_bps == 1_500_000.0
        assert 100 in config.network_sizes and 10_000 in config.network_sizes

    def test_fast_smaller(self):
        assert Fig2Config.fast().num_nodes < Fig2Config().num_nodes

    def test_scaled_override(self):
        config = scaled(Fig2Config(), num_nodes=123)
        assert config.num_nodes == 123
        assert config.num_tunnels == Fig2Config().num_tunnels
