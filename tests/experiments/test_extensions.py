"""Shape tests for the beyond-paper extension experiments."""

import pytest

from repro.experiments.ablation import (
    HintStalenessConfig,
    ScatterConfig,
    TradeoffConfig,
    run_hint_staleness,
    run_scatter,
    run_tradeoff,
)
from repro.experiments.anonymity_comparison import (
    ComparisonConfig,
    run_anonymity_comparison,
)
from repro.experiments.secure_routing_exp import (
    SecureRoutingConfig,
    run_secure_routing,
)
from repro.experiments.session_survival import (
    SessionSurvivalConfig,
    run_session_survival,
)
from repro.experiments.timing_attack import TimingAttackConfig, run_timing_attack


class TestTradeoff:
    def test_monotone_in_k_both_axes(self):
        rows = run_tradeoff(TradeoffConfig.fast())
        by_l = {}
        for row in rows:
            by_l.setdefault(row["tunnel_length"], []).append(row)
        for group in by_l.values():
            group.sort(key=lambda r: r["replication_factor"])
            fails = [r["failed_tunnels"] for r in group]
            corr = [r["corrupted_tunnels"] for r in group]
            assert fails == sorted(fails, reverse=True)
            assert corr == sorted(corr)

    def test_tracks_theory(self):
        rows = run_tradeoff(TradeoffConfig.fast())
        for row in rows:
            assert row["failed_tunnels"] == pytest.approx(
                row["expected_failed"], abs=0.12
            )
            assert row["corrupted_tunnels"] == pytest.approx(
                row["expected_corrupted"], abs=0.05
            )


class TestScatter:
    def test_scattering_reduces_multi_hop_holders(self):
        rows = run_scatter(ScatterConfig.fast())
        rates = {r["selection"]: r["multi_hop_holder_rate"] for r in rows}
        assert rates["scattered"] < rates["uniform"]


class TestHintStaleness:
    def test_fresh_network_all_hints_work(self):
        rows = run_hint_staleness(HintStalenessConfig.fast())
        base = rows[0]
        assert base["churn_events"] == 0
        assert base["hint_failure_rate"] == 0.0
        assert base["via_hint_rate"] == 1.0

    def test_fallback_preserves_success(self):
        rows = run_hint_staleness(HintStalenessConfig.fast())
        assert all(r["tunnel_success_rate"] == 1.0 for r in rows)


class TestTimingAttack:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_timing_attack(TimingAttackConfig.fast())

    def test_conditions_present(self, rows):
        names = {r["condition"] for r in rows}
        assert "no-defence" in names
        assert "padded-cells" in names

    def test_undefended_attack_extracts_signal(self, rows):
        base = next(r for r in rows if r["condition"] == "no-defence")
        assert base["precision"] > 0.2
        assert base["recall"] > 0.1

    def test_padding_blunts_attack(self, rows):
        base = next(r for r in rows if r["condition"] == "no-defence")
        padded = next(r for r in rows if r["condition"] == "padded-cells")
        assert padded["precision"] <= base["precision"] / 2

    def test_defences_cost_bandwidth(self, rows):
        base = next(r for r in rows if r["condition"] == "no-defence")
        for row in rows:
            if row["condition"] != "no-defence":
                assert row["gbits_sent"] > base["gbits_sent"]


class TestSecureRouting:
    def test_deception_nearly_eliminated(self):
        rows = run_secure_routing(SecureRoutingConfig.fast())
        for row in rows:
            assert row["naive_deceived"] > 0.02
            assert row["secure_deceived"] <= row["naive_deceived"] / 3
            assert row["false_alarms"] <= 0.05


class TestSessionSurvival:
    def test_tap_dominates_fixed(self):
        rows = run_session_survival(SessionSurvivalConfig.fast())
        for row in rows:
            assert row["tap_availability"] >= row["fixed_availability"]
            assert row["tap_reforms"] <= row["fixed_reforms"]

    def test_baseline_degrades_under_churn(self):
        rows = run_session_survival(SessionSurvivalConfig.fast())
        heavy = rows[-1]
        assert heavy["failures_per_request"] > 0
        assert heavy["fixed_availability"] < 1.0
        assert heavy["tap_availability"] >= 0.99


class TestReplyDurability:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments.reply_durability import (
            ReplyDurabilityConfig,
            run_reply_durability,
        )

        return run_reply_durability(ReplyDurabilityConfig.fast())

    def test_no_churn_both_perfect(self, rows):
        base = rows[0]
        assert base["churn_fraction"] == 0.0
        assert base["tap_reply_success"] == 1.0
        assert base["fixed_reply_success"] == 1.0

    def test_tap_survives_fixed_rots(self, rows):
        heavy = rows[-1]
        assert heavy["churn_fraction"] > 0
        assert heavy["tap_reply_success"] >= 0.9
        assert heavy["fixed_reply_success"] < 1.0
        assert heavy["tap_reply_success"] > heavy["fixed_reply_success"]

    def test_fixed_tracks_theory(self, rows):
        for row in rows:
            assert row["fixed_reply_success"] == pytest.approx(
                row["fixed_expected"], abs=0.35
            )


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_anonymity_comparison(ComparisonConfig.fast())

    def test_all_systems_present(self, rows):
        assert {r["system"] for r in rows} == {
            "tap-basic", "tap-opt", "crowds", "onion-routing"
        }

    def test_tap_survival_dominates(self, rows):
        by = {r["system"]: r for r in rows}
        assert by["tap-opt"]["path_failure_prob"] < by["crowds"]["path_failure_prob"]
        assert by["tap-opt"]["path_failure_prob"] < by["onion-routing"]["path_failure_prob"]

    def test_anonymity_in_same_band(self, rows):
        degrees = [r["degree_of_anonymity"] for r in rows]
        assert max(degrees) - min(degrees) < 0.3

    def test_optimisation_cuts_hops(self, rows):
        by = {r["system"]: r for r in rows}
        assert by["tap-opt"]["mean_hops"] < by["tap-basic"]["mean_hops"]
