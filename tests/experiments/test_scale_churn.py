"""Shape + determinism tests for the compact-engine scale experiment."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.scale_churn import (
    ScaleChurnConfig,
    run_scale_churn,
    summarize_rows,
)
from repro.obs import EventTrace, MetricsRegistry
from repro.perf import rows_digest

TINY = ScaleChurnConfig(
    num_nodes=400,
    num_anchors=50,
    churn_rounds=3,
    spot_check_routes=4,
    num_seeds=2,
    seed=11,
    telemetry_anchor_samples=16,
    telemetry_route_samples=2,
)


class TestScaleChurn:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scale_churn(TINY)

    def test_row_shape(self, rows):
        churn = [r for r in rows if r["figure"] == "scale-churn"]
        sweeps = [r for r in rows if r["figure"] == "scale-churn-sweep"]
        spots = [r for r in rows if r["figure"] == "scale-churn-spot"]
        assert len(churn) == TINY.num_seeds * TINY.churn_rounds
        assert len(sweeps) == TINY.num_seeds
        assert len(spots) == TINY.num_seeds
        for row in churn:
            assert 0.0 <= row["survivor_fraction"] <= 1.0
            assert 0.0 <= row["replica_overlap"] <= 1.0
            assert row["alive"] > 0

    def test_sweep_routes_every_anchor_to_its_root(self, rows):
        for row in rows:
            if row["figure"] == "scale-churn-sweep":
                assert row["routes"] == TINY.num_anchors
                assert row["completion"] == 1.0
                assert row["root_hit_fraction"] == 1.0
                assert row["mean_hops"] > 0

    def test_churn_erodes_replica_sets(self, rows):
        for rep in range(TINY.num_seeds):
            series = [
                r["replica_overlap"]
                for r in rows
                if r["figure"] == "scale-churn" and r["rep"] == rep
            ]
            assert series == sorted(series, reverse=True)
            assert series[-1] < 1.0

    def test_spot_checks_agree_with_bridge(self, rows):
        for row in rows:
            if row["figure"] == "scale-churn-spot":
                assert row["agree"] == row["routes"]
                assert row["mean_hops"] >= 0

    def test_digest_is_worker_independent(self, rows):
        serial = rows_digest(rows)
        assert rows_digest(run_scale_churn(TINY, workers=2)) == serial

    def test_fast_config_is_smaller(self):
        fast = ScaleChurnConfig.fast()
        assert fast.num_nodes < ScaleChurnConfig().num_nodes


class TestTelemetry:
    """Sampled telemetry must observe without perturbing the rows."""

    @pytest.fixture(scope="class")
    def telemetry(self):
        metrics = MetricsRegistry()
        events = EventTrace()
        rows = run_scale_churn(TINY, metrics=metrics, event_trace=events)
        return rows, metrics, events

    def test_rows_identical_with_telemetry_off(self, telemetry):
        rows, _, _ = telemetry
        assert rows_digest(rows) == rows_digest(run_scale_churn(TINY))

    def test_expected_instruments_present(self, telemetry):
        _, metrics, _ = telemetry
        snap = metrics.snapshot()
        expected_rounds = TINY.num_seeds * TINY.churn_rounds
        assert snap["scale.churn.rounds"]["value"] == expected_rounds
        assert snap["compact.fail_events"]["value"] == expected_rounds
        assert snap["scale.churn.failed_nodes"]["value"] > 0
        assert snap["scale.replica.overlap"]["count"] == (
            expected_rounds * TINY.telemetry_anchor_samples
        )
        assert snap["scale.route.hops"]["count"] == (
            TINY.num_seeds * TINY.telemetry_route_samples
        )
        assert 0.0 < snap["scale.alive_fraction"]["value"] <= 1.0
        assert 0.0 < snap["compact.alive_fraction"]["value"] <= 1.0

    def test_round_events_recorded(self, telemetry):
        _, _, events = telemetry
        rounds = list(events.events("scale.round"))
        assert len(rounds) == TINY.num_seeds * TINY.churn_rounds
        assert all(0.0 <= e.fields["survivor_fraction"] <= 1.0
                   for e in rounds)

    def test_telemetry_worker_independent(self, telemetry):
        _, metrics, events = telemetry
        m2 = MetricsRegistry()
        e2 = EventTrace()
        run_scale_churn(TINY, workers=2, metrics=m2, event_trace=e2)
        assert m2.to_json() == metrics.to_json()
        assert e2.to_jsonl() == events.to_jsonl()


class TestSummarizeRows:
    def test_summary_keys(self):
        rows = run_scale_churn(TINY)
        summary = summarize_rows(rows)
        assert set(summary) == {
            "scale.survivor_fraction",
            "scale.replica_overlap",
            "scale.final_replica_overlap",
            "scale.sweep_completion",
            "scale.sweep_root_hit",
            "scale.sweep_mean_hops",
            "scale.route_agreement",
        }
        assert summary["scale.route_agreement"] == 1.0
        assert summary["scale.sweep_completion"] == 1.0
        assert summary["scale.sweep_root_hit"] == 1.0
        assert 0.0 < summary["scale.replica_overlap"] <= 1.0

    def test_empty_rows(self):
        assert summarize_rows([]) == {}


class TestMillionKnobs:
    """The million-node execution knobs, exercised at toy scale: the
    rows must not depend on chunking or the shared-memory transport,
    and the scalar-verify arm must pin batch-vs-scalar agreement."""

    def test_million_config_shape(self):
        cfg = ScaleChurnConfig.million()
        assert cfg.num_nodes == 1_000_000
        assert cfg.use_shared_memory
        assert cfg.chunk_size is not None
        assert cfg.scalar_verify_routes > 0
        assert cfg.spot_check_routes == 0  # bridge spot checks don't scale

    def test_rows_invariant_to_chunk_and_shm(self):
        flat = rows_digest(run_scale_churn(TINY))
        knobs = dataclasses.replace(
            TINY, chunk_size=7, use_shared_memory=True
        )
        assert rows_digest(run_scale_churn(knobs, workers=2)) == flat

    def test_scalar_verify_rows_agree(self):
        cfg = dataclasses.replace(TINY, scalar_verify_routes=5)
        rows = run_scale_churn(cfg)
        verify = [r for r in rows if r["figure"] == "scale-churn-verify"]
        assert len(verify) == TINY.num_seeds
        for row in verify:
            assert row["routes"] == 5
            assert row["agree"] == 5

    def test_volatile_out_reports_restore_and_segments(self):
        cfg = dataclasses.replace(TINY, use_shared_memory=True)
        volatile = {}
        run_scale_churn(cfg, volatile_out=volatile)
        assert len(volatile["trials"]) == TINY.num_seeds
        for entry in volatile["trials"]:
            assert entry["restore_seconds"] >= 0.0
        segments = volatile["shared_memory"]
        assert segments["segments"] == 1
        assert segments["segment_nbytes"] == 17 * TINY.num_nodes

    def test_summary_aliases_scale_1m_for_million_configs(self):
        cfg = dataclasses.replace(TINY, scalar_verify_routes=3)
        rows = run_scale_churn(cfg)
        plain = summarize_rows(rows, config=cfg)
        assert "scale.scalar_agreement" in plain
        assert not any(k.startswith("scale_1m.") for k in plain)
        million = summarize_rows(
            rows, config=dataclasses.replace(cfg, num_nodes=1_000_000)
        )
        assert million["scale_1m.survivor_fraction"] == (
            million["scale.survivor_fraction"]
        )
        assert million["scale_1m.scalar_agreement"] == 1.0
