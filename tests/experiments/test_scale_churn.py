"""Shape + determinism tests for the compact-engine scale experiment."""

from __future__ import annotations

import pytest

from repro.experiments.scale_churn import ScaleChurnConfig, run_scale_churn
from repro.perf import rows_digest

TINY = ScaleChurnConfig(
    num_nodes=400,
    num_anchors=50,
    churn_rounds=3,
    spot_check_routes=4,
    num_seeds=2,
    seed=11,
)


class TestScaleChurn:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_scale_churn(TINY)

    def test_row_shape(self, rows):
        churn = [r for r in rows if r["figure"] == "scale-churn"]
        spots = [r for r in rows if r["figure"] == "scale-churn-spot"]
        assert len(churn) == TINY.num_seeds * TINY.churn_rounds
        assert len(spots) == TINY.num_seeds
        for row in churn:
            assert 0.0 <= row["survivor_fraction"] <= 1.0
            assert 0.0 <= row["replica_overlap"] <= 1.0
            assert row["alive"] > 0

    def test_churn_erodes_replica_sets(self, rows):
        for rep in range(TINY.num_seeds):
            series = [
                r["replica_overlap"]
                for r in rows
                if r["figure"] == "scale-churn" and r["rep"] == rep
            ]
            assert series == sorted(series, reverse=True)
            assert series[-1] < 1.0

    def test_spot_checks_agree_with_bridge(self, rows):
        for row in rows:
            if row["figure"] == "scale-churn-spot":
                assert row["agree"] == row["routes"]
                assert row["mean_hops"] >= 0

    def test_digest_is_worker_independent(self, rows):
        serial = rows_digest(rows)
        assert rows_digest(run_scale_churn(TINY, workers=2)) == serial

    def test_fast_config_is_smaller(self):
        fast = ScaleChurnConfig.fast()
        assert fast.num_nodes < ScaleChurnConfig().num_nodes
