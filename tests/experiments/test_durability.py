"""Shape + determinism tests for the durability experiment."""

from __future__ import annotations

import pytest

from repro.experiments.config import DurabilityConfig
from repro.experiments.durability import (
    BACKENDS,
    run_durability,
    summarize_rows,
)
from repro.obs import MetricsRegistry
from repro.perf import rows_digest

TINY = DurabilityConfig(
    num_nodes=90,
    num_objects=16,
    object_bytes=64,
    crawler_budget_bytes=4_096,
    num_seeds=1,
    seed=11,
)


class TestDurability:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_durability(TINY)

    def test_row_shape(self, rows):
        per_round = [r for r in rows if r["figure"] == "durability"]
        finals = [r for r in rows if r["figure"] == "durability-final"]
        rounds = {r["round"] for r in per_round}
        assert len(finals) == TINY.num_seeds * len(BACKENDS)
        assert len(per_round) == len(finals) * len(rounds)
        for row in per_round:
            assert row["backend"] in BACKENDS
            assert 0.0 <= row["clean"] <= row["available"] <= 1.0
            assert row["repair_bytes"] >= 0

    def test_replication_serves_rot_erasure_stays_clean(self, rows):
        """The headline: under the bitrot plan the replicated arm
        silently serves corrupted bytes, the erasure arm never does."""
        summary = summarize_rows(rows)
        assert summary["durability.erasure.clean_min"] == 1.0
        assert summary["durability.replicated.clean_min"] < 1.0
        # erasure fetches are verified: rot is never served, whatever
        # the round — it shows up as unavailability at worst
        assert all(
            r["corrupt_served"] == 0 for r in rows
            if r.get("figure") == "durability" and r["backend"] == "erasure"
        )
        # replication hides the rot inside its availability number
        assert summary["durability.replicated.available_min"] > \
            summary["durability.replicated.clean_min"]

    def test_erasure_stores_fewer_bytes(self, rows):
        per_object = {
            r["backend"]: r["stored_bytes_per_object"]
            for r in rows if r["figure"] == "durability-final"
        }
        assert per_object["erasure"] < per_object["replicated"]

    def test_crawler_budget_bounds_round_repair(self, rows):
        summary = summarize_rows(rows)
        frag = (TINY.object_bytes + TINY.data_shares - 1) // TINY.data_shares
        overshoot = (TINY.data_shares + TINY.total_shares) * frag
        assert summary["durability.erasure.repair_bytes_round_max"] <= \
            TINY.crawler_budget_bytes + overshoot

    def test_summary_has_the_gated_indicators(self, rows):
        summary = summarize_rows(rows)
        for backend in BACKENDS:
            for stem in ("available_min", "clean_min", "final_clean",
                         "repair_bytes_round_max"):
                assert f"durability.{backend}.{stem}" in summary
        assert "durability.repair_bytes_ratio" in summary

    def test_rows_identical_across_worker_counts(self, rows):
        import dataclasses

        parallel = dataclasses.replace(TINY, workers=2)
        assert rows_digest(run_durability(parallel)) == rows_digest(rows)

    def test_rows_identical_with_telemetry(self, rows):
        metrics = MetricsRegistry()
        assert rows_digest(run_durability(TINY, metrics=metrics)) == \
            rows_digest(rows)
        snapshot = metrics.snapshot()
        assert any(name.startswith("erasure.repair") for name in snapshot)

    def test_fast_config_is_smaller(self):
        fast = DurabilityConfig.fast()
        assert fast.num_nodes < DurabilityConfig().num_nodes
