"""Figure-level cross-validation: vectorised pipeline vs live objects.

The primitive-level bridge (`tests/analysis/test_idspace.py`) proves
replica sets agree; these tests close the loop at the *experiment*
level: the exact per-hop survival/disclosure booleans that Figure 2
and Figure 3 aggregate must be identical whether computed by the NumPy
model or by interrogating a live overlay with real stored objects.
"""

import numpy as np
import pytest

from repro.analysis.idspace import IdSpaceModel
from repro.past.replication import ReplicatedStore
from repro.pastry.network import PastryNetwork

N_NODES = 120
N_HOPS = 60  # 20 tunnels x length 3
K = 3


@pytest.fixture(scope="module")
def common_world():
    """One id population + hop keys, materialised both ways."""
    rng = np.random.default_rng(515)
    ids64 = np.sort(IdSpaceModel.draw_unique_ids(N_NODES, rng))
    keys64 = IdSpaceModel.draw_unique_ids(N_HOPS, rng)

    model = IdSpaceModel(ids64)

    network = PastryNetwork.build([int(i) << 64 for i in ids64])
    store = ReplicatedStore(network, replication_factor=K)
    for key in keys64:
        store.insert(int(key) << 64, b"anchor")
    return rng, ids64, keys64, model, network, store


class TestFig2PipelineAgreement:
    def test_per_hop_survival_identical(self, common_world):
        rng, ids64, keys64, model, network, store = common_world
        failed = np.zeros(N_NODES, dtype=bool)
        failed[rng.choice(N_NODES, size=N_NODES // 3, replace=False)] = True

        vector_ok = model.any_survivor(keys64, K, failed)

        # Object level: simultaneous failure, no repair (Figure 2).
        for idx in np.flatnonzero(failed):
            network.fail(int(ids64[idx]) << 64)
        try:
            for key, expected in zip(keys64, vector_ok):
                key128 = int(key) << 64
                live_holders = [
                    h for h in store.holders(key128) if network.is_alive(h)
                ]
                object_ok = bool(live_holders) and (
                    network.closest_alive(key128) in live_holders
                )
                assert object_ok == bool(expected), hex(key128)
        finally:
            for idx in np.flatnonzero(failed):
                network.revive(int(ids64[idx]) << 64)

    def test_aggregate_rates_match(self, common_world):
        rng, ids64, keys64, model, network, store = common_world
        failed = np.zeros(N_NODES, dtype=bool)
        failed[rng.choice(N_NODES, size=N_NODES // 4, replace=False)] = True
        vector_rate = float(model.any_survivor(keys64, K, failed).mean())
        for idx in np.flatnonzero(failed):
            network.fail(int(ids64[idx]) << 64)
        try:
            object_rate = np.mean([
                bool([
                    h for h in store.holders(int(k) << 64)
                    if network.is_alive(h)
                ])
                for k in keys64
            ])
        finally:
            for idx in np.flatnonzero(failed):
                network.revive(int(ids64[idx]) << 64)
        assert object_rate == pytest.approx(vector_rate)


class TestFig3PipelineAgreement:
    def test_per_hop_disclosure_identical(self, common_world):
        rng, ids64, keys64, model, network, store = common_world
        malicious_idx = rng.choice(N_NODES, size=N_NODES // 5, replace=False)
        flags = np.zeros(N_NODES, dtype=bool)
        flags[malicious_idx] = True
        flagged_model = IdSpaceModel(model.ids, flags)

        vector_disclosed = flagged_model.any_malicious_holder(keys64, K)

        malicious_ids = {int(ids64[i]) << 64 for i in malicious_idx}
        for key, expected in zip(keys64, vector_disclosed):
            holders = store.holders(int(key) << 64)
            assert bool(holders & malicious_ids) == bool(expected)
