# Convenience targets for the TAP reproduction.

PYTHON ?= python

.PHONY: install test bench bench-paper figures extensions examples all clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	TAP_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.cli all --outdir results/

extensions:
	$(PYTHON) -m repro.cli extensions --outdir results/

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

all: test bench figures extensions

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
