# Convenience targets for the TAP reproduction.

PYTHON ?= python

.PHONY: install lint test audit bench bench-quick bench-pytest bench-paper figures extensions examples all clean telemetry-gate report gate

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# Static checks: ruff when available, else a stdlib syntax sweep so
# offline containers still get a gate.  The RNG check enforces the
# determinism contract: no ambient randomness in library code.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi
	$(PYTHON) tools/check_rng.py src/repro

test:
	$(PYTHON) -m pytest tests/

# Tier-1 suite with repro.obs invariant auditing threaded through every
# membership event of every TapSystem fixture (TAP_AUDIT=1 is read by
# tests/conftest.py).
audit:
	TAP_AUDIT=1 $(PYTHON) -m pytest tests/

# Pinned micro/macro benchmark suite with regression gate: compares
# against the baseline stored in BENCH_core.json (exit 1 on regression
# past the threshold, exit 2 if no baseline exists yet — seed one with
# `python tools/bench_compare.py --write-baseline`).
bench:
	$(PYTHON) tools/bench_compare.py

bench-quick:
	$(PYTHON) tools/bench_compare.py --quick

# Relative overhead gate: the instrumented 100k churn round vs its
# bare twin, interleaved same-run timing (<=5%, exit 1 on breach).
telemetry-gate:
	$(PYTHON) tools/bench_compare.py --overhead-only

# Aggregate every manifest / metrics snapshot / chaos report / span
# trace under results/ into one consolidated report, then enforce the
# declarative SLOs in slo.toml (exit 2 on violation).
report:
	$(PYTHON) -m repro.cli report results/ --md results/report.md

gate:
	$(PYTHON) -m repro.cli gate results/ --slo slo.toml

# The pytest-benchmark suites (timing detail, per-test history).
bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	TAP_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.cli all --outdir results/

extensions:
	$(PYTHON) -m repro.cli extensions --outdir results/

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

all: lint test audit bench figures extensions

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
