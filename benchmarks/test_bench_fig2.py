"""Figure 2 bench: tunnel failure rate vs simultaneous node failures.

Regenerates the paper's series — current tunneling vs TAP (k=3, k=5)
over a 10^4-node network with 5,000 length-5 tunnels — and asserts the
headline result: "in TAP, there is no significant tunnel failure"
while the current approach "increases dramatically".
"""

from repro.experiments import Fig2Config, render_table, rows_to_csv, run_fig2
from repro.experiments.runner import series

from conftest import paper_scale


def test_bench_fig2_failures(benchmark, emit):
    config = Fig2Config() if paper_scale() else Fig2Config.fast()
    rows = benchmark.pedantic(run_fig2, args=(config,), rounds=1, iterations=1)

    emit(
        "fig2",
        render_table(
            rows,
            columns=["failed_fraction", "scheme", "failed_tunnels", "expected"],
            title="Figure 2 — failed tunnels vs failed nodes "
                  f"(N={config.num_nodes}, T={config.num_tunnels}, l={config.tunnel_length})",
        ),
        rows_to_csv(rows),
    )

    by = series(rows, "failed_fraction", "failed_tunnels")
    # Current tunneling degrades dramatically ...
    assert by["current"][-1][1] > 0.8
    # ... while TAP stays low at moderate failure rates, k=5 best.
    for p, v in by["tap-k3"]:
        if p <= 0.2:
            assert v < 0.1
    for (_, k3), (_, k5) in zip(by["tap-k3"], by["tap-k5"]):
        assert k5 <= k3
