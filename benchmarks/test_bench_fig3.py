"""Figure 3 bench: corrupted tunnels vs colluding malicious fraction.

Regenerates the k=3, l=5 corruption curve and asserts the paper's
claim that "there is no significant tunnels corrupted even if p is
large enough (e.g., 0.3)".
"""

from repro.experiments import Fig3Config, render_table, rows_to_csv, run_fig3

from conftest import paper_scale


def test_bench_fig3_collusion(benchmark, emit):
    config = Fig3Config() if paper_scale() else Fig3Config.fast()
    rows = benchmark.pedantic(run_fig3, args=(config,), rounds=1, iterations=1)

    emit(
        "fig3",
        render_table(
            rows,
            columns=["malicious_fraction", "corrupted_tunnels", "expected"],
            title="Figure 3 — corrupted tunnels vs malicious nodes "
                  f"(N={config.num_nodes}, k={config.replication_factor}, "
                  f"l={config.tunnel_length})",
        ),
        rows_to_csv(rows),
    )

    values = [r["corrupted_tunnels"] for r in rows]
    assert values == sorted(values)  # grows with p
    assert values[-1] < 0.2  # "no significant corruption" at p=0.3
    # Monte Carlo tracks the closed form.
    for row in rows:
        assert abs(row["corrupted_tunnels"] - row["expected"]) < 0.05
