"""Extension bench: secure routing to tunnel hop nodes (§9).

The paper defers secure routing to its extended report; this bench
regenerates the core result of the technique it builds on (Castro et
al., OSDI 2002): naive lookups are silently deceived by intercepting
relays, while verified redundant lookups convert nearly all deception
into detected failures.
"""

from repro.experiments.runner import render_table, rows_to_csv
from repro.experiments.secure_routing_exp import (
    SecureRoutingConfig,
    run_secure_routing,
)

from conftest import paper_scale


def test_bench_secure_routing(benchmark, emit):
    config = SecureRoutingConfig() if paper_scale() else SecureRoutingConfig.fast()
    rows = benchmark.pedantic(run_secure_routing, args=(config,), rounds=1, iterations=1)

    emit(
        "ext_secure_routing",
        render_table(
            rows,
            columns=["malicious_fraction", "forgery", "naive_deceived",
                     "secure_deceived", "secure_alarms", "false_alarms"],
            title="Extension — secure routing vs routing interception "
                  f"(N={config.num_nodes}, redundancy={config.redundancy})",
        ),
        rows_to_csv(rows),
    )

    for row in rows:
        # The attack matters ...
        assert row["naive_deceived"] > 0.02
        # ... verification nearly eliminates silent deception ...
        assert row["secure_deceived"] <= row["naive_deceived"] / 3
        # ... converting attacks into alarms, with few false alarms.
        assert row["secure_alarms"] > 0
        assert row["false_alarms"] <= 0.05
