"""Benchmark harness configuration.

Each ``test_bench_*`` module regenerates one figure (or ablation) of
the paper: the benchmark measures the experiment's runtime, and the
figure's rows are printed and written to ``benchmarks/results/`` so
the series the paper plots can be inspected (or piped into a plotting
tool) after a run.

Benchmarks default to the ``fast()`` configs; set
``TAP_BENCH_SCALE=paper`` to run the paper-scale parameters.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def paper_scale() -> bool:
    return os.environ.get("TAP_BENCH_SCALE", "fast").lower() == "paper"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Print a rendered table and persist it (plus CSV) to results/."""

    def _emit(name: str, table: str, csv: str) -> None:
        (results_dir / f"{name}.txt").write_text(table)
        (results_dir / f"{name}.csv").write_text(csv)
        with capsys.disabled():
            print()
            print(table, end="")

    return _emit
