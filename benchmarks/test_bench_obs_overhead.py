"""Observability overhead bench: instrumented vs bare figure paths.

The acceptance bar for :mod:`repro.obs` is that threading a
:class:`~repro.obs.MetricsRegistry` through the Fig. 6 pipeline (the
hot routing path) costs < 5% wall-clock.  Fig. 2 is pure vectorised
NumPy and takes no instrumentation, so its overhead is identically
zero; Fig. 6 exercises every instrumented layer (overlay build,
``route``, per-link histogram observation).

The measured overhead and the exported histogram summary land in
``benchmarks/results/obs_overhead.{txt,csv}``.
"""

from __future__ import annotations

import time

from repro.experiments import Fig6Config, render_table, rows_to_csv, run_fig6
from repro.obs import MetricsRegistry

from conftest import paper_scale

#: generous CI bound; the measured number (reported in results/) is
#: the artifact — typically well under the 5% acceptance bar.
MAX_OVERHEAD = 0.05


def _config() -> Fig6Config:
    if paper_scale():
        return Fig6Config()
    return Fig6Config(
        network_sizes=(100, 500, 1_000),
        transfers_per_size=20,
        num_seeds=1,
    )


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_obs_overhead(benchmark, emit):
    config = _config()
    registry = MetricsRegistry()

    bare = _best_of(lambda: run_fig6(config))
    instrumented = _best_of(lambda: run_fig6(config, metrics=registry))
    benchmark.pedantic(
        run_fig6, args=(config,), kwargs={"metrics": MetricsRegistry()},
        rounds=1, iterations=1,
    )

    overhead = instrumented / bare - 1.0
    rows = [
        {
            "path": "fig6",
            "bare_s": bare,
            "instrumented_s": instrumented,
            "overhead_pct": 100.0 * overhead,
            "routes_observed": registry.counter("pastry.route.count").value,
            "links_observed": registry.histogram("fig6.link_latency_s").count,
        }
    ]
    emit(
        "obs_overhead",
        render_table(rows, title="repro.obs instrumentation overhead"),
        rows_to_csv(rows),
    )
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )
    # the instrumented run actually recorded the latency artifacts
    assert registry.histogram("fig6.link_latency_s").count > 0
    assert registry.counter("pastry.route.count").value > 0