"""Ablation benches for the design choices DESIGN.md calls out:
the k/l trade-off surface and the §3.5 scattered-selection rule."""

from repro.experiments.ablation import (
    ScatterConfig,
    TradeoffConfig,
    run_scatter,
    run_tradeoff,
)
from repro.experiments.runner import render_table, rows_to_csv

from conftest import paper_scale


def test_bench_tradeoff_surface(benchmark, emit):
    """Figure 2 and Figure 4 are 1-D slices of this (k, l) surface:
    raising k buys fault tolerance and costs anonymity; raising l buys
    anonymity and (per Figure 6) costs latency."""
    config = TradeoffConfig() if paper_scale() else TradeoffConfig.fast()
    rows = benchmark.pedantic(run_tradeoff, args=(config,), rounds=1, iterations=1)

    emit(
        "ablation_tradeoff",
        render_table(
            rows,
            columns=["replication_factor", "tunnel_length",
                     "failed_tunnels", "corrupted_tunnels",
                     "expected_failed", "expected_corrupted"],
            title="Ablation — functionality/anonymity trade-off "
                  f"(fail p={config.failure_fraction}, "
                  f"malicious p={config.malicious_fraction})",
        ),
        rows_to_csv(rows),
    )

    by_l: dict[int, list[dict]] = {}
    for row in rows:
        by_l.setdefault(row["tunnel_length"], []).append(row)
    for length, group in by_l.items():
        group.sort(key=lambda r: r["replication_factor"])
        fails = [r["failed_tunnels"] for r in group]
        corr = [r["corrupted_tunnels"] for r in group]
        # k helps functionality, hurts anonymity — monotone both ways.
        assert fails == sorted(fails, reverse=True)
        assert corr == sorted(corr)


def test_bench_scatter_selection(benchmark, emit):
    """§3.5: prefix-scattering minimises the chance that one node holds
    replicas of several hops of the same tunnel."""
    config = ScatterConfig() if paper_scale() else ScatterConfig.fast()
    rows = benchmark.pedantic(run_scatter, args=(config,), rounds=1, iterations=1)

    emit(
        "ablation_scatter",
        render_table(
            rows,
            columns=["selection", "multi_hop_holder_rate"],
            title="Ablation — scattered vs uniform anchor selection "
                  f"(N={config.num_nodes}, l={config.tunnel_length}, "
                  f"k={config.replication_factor})",
        ),
        rows_to_csv(rows),
    )

    rates = {r["selection"]: r["multi_hop_holder_rate"] for r in rows}
    assert rates["scattered"] < rates["uniform"]
