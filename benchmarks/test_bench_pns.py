"""Ablation bench: proximity neighbour selection (FreePastry locality).

The paper's testbed (FreePastry 1.3) fills routing tables with
topologically nearby entries; our default omniscient build does not.
This bench reruns the Figure-6 measurement with PNS enabled and
quantifies what locality buys: shorter physical routes for everything
that traverses the DHT (overt and TAP_basic), while TAP_opt — which
bypasses DHT routing via IP hints — is unaffected by construction.
"""

from dataclasses import replace

from repro.experiments import Fig6Config, run_fig6
from repro.experiments.runner import render_table, rows_to_csv

from conftest import paper_scale


def _run_both(config):
    rows = []
    for pns in (False, True):
        for row in run_fig6(replace(config, pns=pns)):
            row["pns"] = pns
            rows.append(row)
    return rows


def test_bench_pns_locality(benchmark, emit):
    # Small messages: locality improves propagation delay, which a
    # 2 Mb transfer hides behind per-hop serialization (1.33 s/hop at
    # 1.5 Mb/s).  10 kb keeps the measurement latency-dominated — the
    # interactive-traffic regime where PNS matters.
    if paper_scale():
        config = Fig6Config(network_sizes=(500, 2_000), transfers_per_size=40,
                            num_seeds=2, tunnel_lengths=(5,),
                            file_bits=10_000.0)
    else:
        config = Fig6Config(network_sizes=(300, 1_000), transfers_per_size=15,
                            num_seeds=1, tunnel_lengths=(5,),
                            file_bits=10_000.0)
    rows = benchmark.pedantic(_run_both, args=(config,), rounds=1, iterations=1)

    emit(
        "ablation_pns",
        render_table(
            rows,
            columns=["num_nodes", "scheme", "pns", "transfer_time_s"],
            title="Ablation — proximity neighbour selection "
                  "(Figure 6 rerun with locality-aware routing tables)",
        ),
        rows_to_csv(rows),
    )

    by = {}
    for row in rows:
        by[(row["num_nodes"], row["scheme"], row["pns"])] = row["transfer_time_s"]
    for n in config.network_sizes:
        # DHT-routing schemes get meaningfully faster with PNS ...
        assert by[(n, "overt", True)] < 0.9 * by[(n, "overt", False)]
        assert by[(n, "tap-basic-l5", True)] < 0.9 * by[(n, "tap-basic-l5", False)]
        # ... the hint-optimised scheme barely moves (direct links).
        opt_delta = abs(by[(n, "tap-opt-l5", True)] - by[(n, "tap-opt-l5", False)])
        assert opt_delta < 0.15 * by[(n, "tap-opt-l5", False)]
