"""Scale bench: compact-engine churn survival at 10^5 nodes.

Regenerates the scale-churn rows — replica-set survival and overlap
over churn rounds on the array-backed overlay engine, with
packet-level spot-checks through the materialisation bridge — and
asserts the engine's headline: every spot-check route agrees with the
object engine, and replica overlap erodes monotonically under churn.

``TAP_BENCH_SCALE=paper`` runs the full N=100,000 configuration; the
default CI-sized run uses ``ScaleChurnConfig.fast()`` (N=2,000).
"""

from repro.experiments import (
    ScaleChurnConfig,
    render_table,
    rows_to_csv,
    run_scale_churn,
)
from repro.experiments.runner import series

from conftest import paper_scale


def test_bench_scale_churn(benchmark, emit):
    config = ScaleChurnConfig() if paper_scale() else ScaleChurnConfig.fast()
    rows = benchmark.pedantic(run_scale_churn, args=(config,), rounds=1, iterations=1)

    churn = [r for r in rows if r["figure"] == "scale-churn"]
    emit(
        "scale_churn",
        render_table(
            churn,
            columns=["rep", "round", "alive", "survivor_fraction", "replica_overlap"],
            title="Scale churn — replica survival on the compact engine "
                  f"(N={config.num_nodes}, anchors={config.num_anchors}, "
                  f"fail={config.fail_fraction}, join={config.join_fraction})",
        ),
        rows_to_csv(rows),
    )

    # Bridge spot-checks: compact routing must agree with the object
    # engine packet for packet.
    for row in rows:
        if row["figure"] == "scale-churn-spot":
            assert row["agree"] == row["routes"]

    # Churn erodes original replica sets monotonically but most anchors
    # keep at least one original replica at these rates.
    for rep, points in series(churn, "round", "replica_overlap", scheme_key="rep").items():
        overlaps = [v for _, v in points]
        assert overlaps == sorted(overlaps, reverse=True), rep
    assert all(r["survivor_fraction"] > 0.9 for r in churn)
