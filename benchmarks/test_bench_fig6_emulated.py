"""Figure 6 cross-validation: the event-driven emulation reproduces
the analytic latency model.

The main Figure-6 bench computes transfer times from routed paths and
the store-and-forward formula.  This bench regenerates the same series
by actually *running* the transfers as timed messages over the DES
kernel — real deployed anchors, real layered crypto, per-message link
delays — and asserts (a) the paper's ordering holds and (b) every
emulated latency equals the analytic formula applied to the path the
message actually took.
"""

import pytest

from repro.core.emulation import CONTROL_BITS, TapEmulation
from repro.core.system import TapSystem
from repro.experiments.runner import render_table, rows_to_csv
from repro.simnet.topology import Topology
from repro.simnet.transport import TransferModel, path_transfer_time

from conftest import paper_scale

FILE_BITS = 2_000_000.0


def _run_emulated_fig6(sizes, transfers):
    rows = []
    for n_nodes in sizes:
        system = TapSystem.bootstrap(num_nodes=n_nodes, seed=600 + n_nodes)
        alice = system.tap_node(system.random_node_id("alice"))
        system.deploy_thas(alice, count=20)
        topo = Topology(seed=n_nodes)
        emu = TapEmulation.from_system(system, topology=topo)
        rng = system.seeds.pyrandom("fig6-emu")

        tunnels = {
            "tap-basic-l3": system.form_tunnel(alice, 3),
            "tap-opt-l3": system.form_tunnel(alice, 3, use_hints=True),
            "tap-basic-l5": system.form_tunnel(alice, 5),
            "tap-opt-l5": system.form_tunnel(alice, 5, use_hints=True),
        }
        acc = {name: [] for name in tunnels}
        mismatches = []
        for _ in range(transfers):
            dest = rng.getrandbits(128)
            for name, tunnel in tunnels.items():
                trace = emu.send_through_tunnel(
                    alice, tunnel, dest, b"f", size_bits=FILE_BITS
                )
                emu.simulator.run()
                assert trace.delivered, trace.failed_reason
                acc[name].append(trace.latency)
                analytic = path_transfer_time(
                    topo, trace.path, FILE_BITS + CONTROL_BITS,
                    TransferModel.STORE_AND_FORWARD,
                )
                if abs(trace.latency - analytic) > 1e-9:
                    mismatches.append((name, trace.latency, analytic))
        assert mismatches == []
        for name, values in acc.items():
            rows.append(
                {
                    "figure": "fig6-emulated",
                    "num_nodes": n_nodes,
                    "scheme": name,
                    "transfer_time_s": sum(values) / len(values),
                }
            )
    return rows


def test_bench_fig6_emulated(benchmark, emit):
    sizes = (100, 300, 1_000) if paper_scale() else (100, 300)
    transfers = 10 if paper_scale() else 5
    rows = benchmark.pedantic(
        _run_emulated_fig6, args=(sizes, transfers), rounds=1, iterations=1
    )

    emit(
        "fig6_emulated",
        render_table(
            rows,
            columns=["num_nodes", "scheme", "transfer_time_s"],
            title="Figure 6 (event-driven emulation) — 2 Mb transfers "
                  "over the DES kernel, real anchors and crypto",
        ),
        rows_to_csv(rows),
    )

    by_n = {}
    for row in rows:
        by_n.setdefault(row["num_nodes"], {})[row["scheme"]] = row["transfer_time_s"]
    for schemes in by_n.values():
        assert schemes["tap-opt-l3"] < schemes["tap-basic-l3"]
        assert schemes["tap-opt-l5"] < schemes["tap-basic-l5"]
        assert schemes["tap-opt-l3"] < schemes["tap-opt-l5"]
