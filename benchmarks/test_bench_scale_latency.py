"""Scale bench: fig6-class latency on the batched packet plane.

Regenerates the scale-latency rows — direct vs tunnel transfer latency
on a churned compact overlay, every arm routed as one
``route_many``/``route_tunnels`` batch — and asserts the fig6 trend at
scale: tunnels pay latency proportional to their hop stretch (trend
ratio ≈ 1 under i.i.d. links), longer tunnels cost more, and the
scalar cross-check agrees on every verified route.

``TAP_BENCH_SCALE=paper`` runs the full N=100,000 configuration; the
default CI-sized run uses ``ScaleLatencyConfig.fast()`` (N=2,000).
"""

from repro.experiments import (
    ScaleLatencyConfig,
    render_table,
    rows_to_csv,
    run_scale_latency,
)

from conftest import paper_scale


def test_bench_scale_latency(benchmark, emit):
    config = ScaleLatencyConfig() if paper_scale() else ScaleLatencyConfig.fast()
    rows = benchmark.pedantic(
        run_scale_latency, args=(config,), rounds=1, iterations=1
    )

    arms = [r for r in rows if r["figure"] == "scale-latency"]
    emit(
        "scale_latency",
        render_table(
            arms,
            columns=["rep", "arm", "completion", "mean_hops",
                     "p50_s", "mean_s", "hop_stretch", "trend_ratio"],
            title="Scale latency — direct vs tunnel on the packet plane "
                  f"(N={config.num_nodes}, transfers={config.num_transfers}, "
                  f"l={config.tunnel_lengths})",
        ),
        rows_to_csv(rows),
    )

    # Scalar cross-check: the batched router must agree packet for
    # packet with CompactOverlay.route on every verified transfer.
    for row in rows:
        if row["figure"] == "scale-latency-verify":
            assert row["agree"] == row["routes"]

    # The fig6 trend at scale: tunnels stretch hops by ~#legs, latency
    # follows hops (trend ratio near 1), longer tunnels cost more.
    assert all(r["completion"] == 1.0 for r in arms)
    for rep in {r["rep"] for r in arms}:
        by_arm = {r["arm"]: r for r in arms if r["rep"] == rep}
        direct = by_arm["direct"]
        prev_mean = direct["mean_s"]
        for length in config.tunnel_lengths:
            tun = by_arm[f"tunnel-l{length}"]
            assert tun["mean_hops"] > direct["mean_hops"]
            assert tun["mean_s"] > prev_mean
            prev_mean = tun["mean_s"]
            assert 0.8 < tun["trend_ratio"] < 1.2
