"""Extension bench: §5 IP-hint staleness under churn.

The paper evaluates TAP_opt only on a static network (hints never
stale).  This bench quantifies the fallback behaviour the optimisation
was designed around: as churn grows, more hints fail and the mean
underlying hops per tunnel hop drifts from 1 (pure shortcut) toward
the DHT routing cost — while tunnels keep succeeding.
"""

from repro.experiments.ablation import HintStalenessConfig, run_hint_staleness
from repro.experiments.runner import render_table, rows_to_csv

from conftest import paper_scale


def test_bench_hint_staleness(benchmark, emit):
    config = HintStalenessConfig() if paper_scale() else HintStalenessConfig.fast()
    rows = benchmark.pedantic(
        run_hint_staleness, args=(config,), rounds=1, iterations=1
    )

    emit(
        "ablation_hints",
        render_table(
            rows,
            columns=["churn_events", "hint_failure_rate", "via_hint_rate",
                     "mean_underlying_per_hop", "tunnel_success_rate"],
            title="Ablation — IP-hint staleness vs churn "
                  f"(N={config.num_nodes}, l={config.tunnel_length})",
        ),
        rows_to_csv(rows),
    )

    # No churn: every hint works, one physical link per tunnel hop.
    base = rows[0]
    assert base["churn_events"] == 0
    assert base["hint_failure_rate"] == 0.0
    assert base["mean_underlying_per_hop"] == 1.0
    # Staleness grows with churn ...
    failure_rates = [r["hint_failure_rate"] for r in rows]
    assert failure_rates[-1] >= failure_rates[0]
    # ... but the DHT fallback keeps every tunnel working.
    assert all(r["tunnel_success_rate"] == 1.0 for r in rows)
