"""Figure 4 bench: corruption vs replication factor (a) and tunnel
length (b) — the paper's functionality/anonymity trade-off knobs."""

from repro.experiments import (
    Fig4Config,
    render_table,
    rows_to_csv,
    run_fig4a,
    run_fig4b,
)

from conftest import paper_scale


def _config() -> Fig4Config:
    return Fig4Config() if paper_scale() else Fig4Config.fast()


def test_bench_fig4a_replication_factor(benchmark, emit):
    config = _config()
    rows = benchmark.pedantic(run_fig4a, args=(config,), rounds=1, iterations=1)

    emit(
        "fig4a",
        render_table(
            rows,
            columns=["replication_factor", "corrupted_tunnels", "expected"],
            title="Figure 4(a) — corruption vs replication factor "
                  f"(p={config.malicious_fraction}, l={config.tunnel_length})",
        ),
        rows_to_csv(rows),
    )

    values = [r["corrupted_tunnels"] for r in rows]
    assert values == sorted(values)  # bigger k -> more disclosure
    assert values[-1] > values[0]


def test_bench_fig4b_tunnel_length(benchmark, emit):
    config = _config()
    rows = benchmark.pedantic(run_fig4b, args=(config,), rounds=1, iterations=1)

    emit(
        "fig4b",
        render_table(
            rows,
            columns=["tunnel_length", "corrupted_tunnels", "expected"],
            title="Figure 4(b) — corruption vs tunnel length "
                  f"(p={config.malicious_fraction}, k={config.replication_factor})",
        ),
        rows_to_csv(rows),
    )

    values = [r["corrupted_tunnels"] for r in rows]
    assert values == sorted(values, reverse=True)  # longer -> safer
