"""Figure 5 bench: corruption over time under churn.

Regenerates the refreshed-vs-unrefreshed curves and asserts the
paper's conclusion: "the corrupted rate of unrefreshed increases
steadily as time goes, while that of refreshed keeps almost constant."
"""

from repro.experiments import Fig5Config, render_table, rows_to_csv, run_fig5
from repro.experiments.runner import series

from conftest import paper_scale


def test_bench_fig5_churn(benchmark, emit):
    if paper_scale():
        config = Fig5Config()
    else:
        # Denser than fast(): the corruption event needs enough tunnels
        # and churn to rise above shot noise.
        config = Fig5Config(
            num_nodes=2_000, num_tunnels=2_000, churn_per_unit=100,
            time_units=12, num_seeds=2,
        )
    rows = benchmark.pedantic(run_fig5, args=(config,), rounds=1, iterations=1)

    emit(
        "fig5",
        render_table(
            rows,
            columns=["time", "scheme", "corrupted_tunnels", "static_expected"],
            title="Figure 5 — corruption over time under churn "
                  f"(N={config.num_nodes}, churn={config.churn_per_unit}/unit, "
                  f"p={config.malicious_fraction}, k={config.replication_factor})",
        ),
        rows_to_csv(rows),
    )

    by = series(rows, "time", "corrupted_tunnels")
    unref = [v for _, v in by["unrefreshed"]]
    ref = [v for _, v in by["refreshed"]]
    # unrefreshed grows steadily (monotone by construction) ...
    assert unref == sorted(unref)
    assert unref[-1] > unref[0]
    # ... refreshed stays near the static level throughout.
    static = rows[0]["static_expected"]
    assert max(ref) < static + 5.0 / config.num_tunnels + 0.01
    # and the separation at the end is clear.  At the paper's gentle
    # churn (1%/unit) the gap is ~1.7x after 20 units (the paper's
    # "increases steadily"); the denser default config separates 2x+.
    if paper_scale():
        assert unref[-1] > ref[-1]
        assert unref[-1] > 1.5 * unref[0]
    else:
        assert unref[-1] > max(ref[-1], 1.0 / config.num_tunnels) * 2
