"""Extension bench: reply-path durability (§1's anonymous email claim).

"Current tunneling techniques may fail to route the reply back to the
sender due to node failures along the tunnel, while TAP can route the
reply back to the sender thanks to its robustness."  Quantified:
replies sent after the overlay churned, TAP reply tunnels vs recorded
fixed-node return paths.
"""

from repro.experiments.reply_durability import (
    ReplyDurabilityConfig,
    run_reply_durability,
)
from repro.experiments.runner import render_table, rows_to_csv

from conftest import paper_scale


def test_bench_reply_durability(benchmark, emit):
    config = ReplyDurabilityConfig() if paper_scale() else ReplyDurabilityConfig.fast()
    rows = benchmark.pedantic(
        run_reply_durability, args=(config,), rounds=1, iterations=1
    )

    emit(
        "ext_reply_durability",
        render_table(
            rows,
            columns=["churn_fraction", "tap_reply_success",
                     "fixed_reply_success", "fixed_expected"],
            title="Extension — reply durability after churn "
                  f"(N={config.num_nodes}, {config.mails} mails, "
                  f"l={config.tunnel_length})",
        ),
        rows_to_csv(rows),
    )

    for row in rows:
        assert row["tap_reply_success"] >= row["fixed_reply_success"]
    heaviest = rows[-1]
    assert heaviest["churn_fraction"] >= 0.3
    # TAP replies survive ordinary churn (repair keeps anchors alive) ...
    assert heaviest["tap_reply_success"] >= 0.9
    # ... while recorded fixed paths rot at the (1-p)^l rate.
    assert heaviest["fixed_reply_success"] < 0.8
