"""Figure 6 bench: 2 Mb transfer latency vs network size.

Regenerates overt / TAP_basic / TAP_opt (l = 3, 5) over real Pastry
routes and the paper's link model, and asserts the reported shape:
basic tunneling pays a big penalty that grows with N and l; the §5
optimisation removes most of it.
"""

from repro.experiments import Fig6Config, render_table, rows_to_csv, run_fig6
from repro.experiments.runner import series

from conftest import paper_scale


def test_bench_fig6_latency(benchmark, emit):
    if paper_scale():
        config = Fig6Config()
    else:
        config = Fig6Config(
            network_sizes=(100, 500, 1_000, 2_000),
            transfers_per_size=30,
            num_seeds=1,
        )
    rows = benchmark.pedantic(run_fig6, args=(config,), rounds=1, iterations=1)

    emit(
        "fig6",
        render_table(
            rows,
            columns=["num_nodes", "scheme", "transfer_time_s",
                     "expected_route_hops"],
            title="Figure 6 — 2 Mb transfer latency "
                  f"(links {config.bandwidth_bps/1e6:.1f} Mb/s, "
                  f"latency U[{config.min_latency_s*1e3:.0f},"
                  f"{config.max_latency_s*1e3:.0f}] ms)",
        ),
        rows_to_csv(rows),
    )

    by_n: dict[int, dict[str, float]] = {}
    for row in rows:
        by_n.setdefault(row["num_nodes"], {})[row["scheme"]] = row["transfer_time_s"]
    for schemes in by_n.values():
        assert schemes["overt"] < schemes["tap-opt-l3"] < schemes["tap-basic-l3"]
        assert schemes["tap-opt-l5"] < schemes["tap-basic-l5"]
        assert schemes["tap-basic-l3"] < schemes["tap-basic-l5"]
    basic = series(rows, "num_nodes", "transfer_time_s")["tap-basic-l5"]
    assert basic[-1][1] > basic[0][1]  # penalty grows with N
