"""Extension bench: timing analysis vs cover traffic vs padding.

Quantifies the paper's §2/§6 position with the event-driven emulation:

* the case-2 adversary (first + tail hop control) extracts real
  (initiator, destination) pairs from timing + size correlation;
* cover traffic barely helps while costing bandwidth — variable-size
  traffic is fingerprintable, the paper's "does not protect from
  internal attackers";
* padding every payload to a fixed cell is what actually blunts the
  attack, at its own bandwidth cost.
"""

from repro.experiments.runner import render_table, rows_to_csv
from repro.experiments.timing_attack import TimingAttackConfig, run_timing_attack

from conftest import paper_scale


def test_bench_timing_attack(benchmark, emit):
    config = TimingAttackConfig() if paper_scale() else TimingAttackConfig.fast()
    rows = benchmark.pedantic(run_timing_attack, args=(config,), rounds=1, iterations=1)

    emit(
        "ext_timing",
        render_table(
            rows,
            columns=["condition", "claims", "precision", "recall", "gbits_sent"],
            title="Extension — case-2 timing analysis vs defences "
                  f"(N={config.num_nodes}, {config.transmissions} transfers, "
                  f"{config.targeted_fraction:.0%} tunnels first+tail controlled)",
        ),
        rows_to_csv(rows),
    )

    by = {r["condition"]: r for r in rows}
    base = by["no-defence"]
    padded = by["padded-cells"]
    # The attack extracts signal when undefended ...
    assert base["precision"] > 0.2 and base["recall"] > 0.1
    # ... padding blunts it decisively ...
    assert padded["precision"] <= base["precision"] / 2
    assert padded["recall"] <= base["recall"] / 2
    # ... and every defence costs bandwidth (the paper's objection).
    for name, row in by.items():
        if name != "no-defence":
            assert row["gbits_sent"] > base["gbits_sent"]
