"""Span-tracing overhead bench: tracer-off vs tracer-on figure paths.

The acceptance bar for :mod:`repro.obs.spans` mirrors the metrics one:
the tracing hooks must be free when tracing is off, and cheap when it
is on.  Fig. 6 is the hot routing path the spans instrument, so it is
the workload; two gates are enforced:

* **disabled** — running with :data:`~repro.obs.NULL_TRACER` (the
  hooks present but absorbing everything) must cost < 2% over the
  bare run, i.e. the no-op path really is a no-op;
* **enabled** — a live :class:`~repro.obs.SpanTracer` recording every
  span must cost < 10%.

Wall-clock on shared/virtualised hosts wanders by several percent
between *identical* runs, so the harness measures its own noise floor
(two interleaved bare variants) and widens the gates by it; on a
quiet machine the floor is ~0 and the gates are exactly the bars
above.  The measured overheads land in
``benchmarks/results/span_overhead.{txt,csv}``.
"""

from __future__ import annotations

import time

from repro.experiments import Fig6Config, render_table, rows_to_csv, run_fig6
from repro.obs import NULL_TRACER, SpanTracer

from conftest import paper_scale

#: the acceptance bars; the measured numbers (in results/) are the
#: artifact — typically well under both.
MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10


def _config() -> Fig6Config:
    if paper_scale():
        return Fig6Config()
    return Fig6Config(
        network_sizes=(100, 500, 1_000),
        transfers_per_size=20,
        num_seeds=1,
    )


def _interleaved_best(variants: dict, repeats: int = 6) -> dict:
    """Best-of-N per variant, measured round-robin.

    Block measurement (all repeats of A, then all of B) lets CPU
    warm-up and frequency drift bias whichever variant runs first;
    interleaving exposes every variant to the same conditions.
    """
    best = dict.fromkeys(variants, float("inf"))
    for _ in range(repeats):
        for name, fn in variants.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def test_bench_span_overhead(benchmark, emit):
    config = _config()
    run_fig6(config)  # warm caches before timing anything

    live = SpanTracer()
    variants = {
        # two identical bare variants: their disagreement IS the
        # measurement noise, and the gates widen by it
        "bare_a": lambda: run_fig6(config),
        "bare_b": lambda: run_fig6(config),
        "disabled": lambda: run_fig6(config, tracer=NULL_TRACER),
        "enabled": lambda: run_fig6(config, tracer=live),
    }
    best = _interleaved_best(variants)
    benchmark.pedantic(
        run_fig6, args=(config,), kwargs={"tracer": SpanTracer()},
        rounds=1, iterations=1,
    )

    bare = min(best["bare_a"], best["bare_b"])
    noise = max(best["bare_a"], best["bare_b"]) / bare - 1.0
    disabled_overhead = best["disabled"] / bare - 1.0
    enabled_overhead = best["enabled"] / bare - 1.0
    rows = [
        {
            "path": "fig6",
            "tracer": name,
            "bare_s": bare,
            "traced_s": best[key],
            "overhead_pct": 100.0 * overhead,
            "noise_floor_pct": 100.0 * noise,
            "spans": spans,
        }
        for name, key, overhead, spans in (
            ("null", "disabled", disabled_overhead, 0),
            ("live", "enabled", enabled_overhead, len(live) + live.dropped),
        )
    ]
    emit(
        "span_overhead",
        render_table(rows, title="repro.obs span-tracing overhead"),
        rows_to_csv(rows),
    )
    assert disabled_overhead < MAX_DISABLED_OVERHEAD + noise, (
        f"disabled tracing costs {disabled_overhead:.1%} "
        f"(bar {MAX_DISABLED_OVERHEAD:.0%} + noise floor {noise:.1%})"
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD + noise, (
        f"enabled tracing costs {enabled_overhead:.1%} "
        f"(bar {MAX_ENABLED_OVERHEAD:.0%} + noise floor {noise:.1%})"
    )
    # the live run actually recorded span trees
    assert len(live) + live.dropped > 0
