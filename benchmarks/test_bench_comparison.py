"""Extension bench: TAP's balance point among anonymity designs.

Regenerates the comparison table that quantifies the paper's thesis —
TAP trades a modest latency overhead for anonymity comparable to
Crowds/Onion Routing *and* order-of-magnitude better tunnel survival.
"""

from repro.experiments.anonymity_comparison import (
    ComparisonConfig,
    run_anonymity_comparison,
)
from repro.experiments.runner import render_table, rows_to_csv

from conftest import paper_scale


def test_bench_anonymity_comparison(benchmark, emit):
    config = ComparisonConfig() if paper_scale() else ComparisonConfig.fast()
    rows = benchmark.pedantic(
        run_anonymity_comparison, args=(config,), rounds=1, iterations=1
    )

    emit(
        "ext_comparison",
        render_table(
            rows,
            columns=["system", "degree_of_anonymity", "path_failure_prob",
                     "mean_hops"],
            title="Extension — functionality/anonymity balance "
                  f"(N={config.num_nodes}, p={config.malicious_fraction}, "
                  f"failures={config.failure_fraction})",
        ),
        rows_to_csv(rows),
    )

    by = {r["system"]: r for r in rows}
    tap = by["tap-opt"]
    crowds = by["crowds"]
    onion = by["onion-routing"]

    # TAP's anonymity sits in the same band as the alternatives ...
    assert tap["degree_of_anonymity"] > 0.8
    assert abs(tap["degree_of_anonymity"] - crowds["degree_of_anonymity"]) < 0.2
    # ... while its tunnels survive failures an order of magnitude better.
    assert tap["path_failure_prob"] < crowds["path_failure_prob"] / 5
    assert tap["path_failure_prob"] < onion["path_failure_prob"] / 5
    # The price: more hops than a bare onion path (Figure 6's premise),
    # dramatically reduced by the §5 optimisation.
    assert by["tap-basic"]["mean_hops"] > tap["mean_hops"]
