"""Substrate microbenchmarks: the hot paths the experiments lean on.

These are classic pytest-benchmark timing runs (many rounds), profiling
the layers per the HPC guide workflow — measure before optimising:

* Pastry routing decisions over a built overlay;
* the vectorised replica-table kernel (NumPy searchsorted + lexsort);
* symmetric seal/open (one op per tunnel hop per message);
* full 5-hop onion build + peel.
"""

import random

import numpy as np
import pytest

from repro.analysis.idspace import IdSpaceModel, replica_table
from repro.crypto.onion import OnionLayer, build_onion, peel_layer
from repro.crypto.symmetric import SymmetricKey
from repro.pastry.network import PastryNetwork
from repro.util.ids import random_id


@pytest.fixture(scope="module")
def overlay():
    rng = random.Random(42)
    ids = {rng.getrandbits(128) for _ in range(2_000)}
    net = PastryNetwork.build(ids)
    return net, sorted(ids)


def test_bench_pastry_route(benchmark, overlay):
    net, ids = overlay
    rng = random.Random(7)
    sources = [ids[rng.randrange(len(ids))] for _ in range(64)]
    keys = [random_id(rng) for _ in range(64)]
    state = {"i": 0}

    def route_one():
        i = state["i"] = (state["i"] + 1) % 64
        return net.route(sources[i], keys[i])

    result = benchmark(route_one)
    assert result.success


def test_bench_overlay_build(benchmark):
    rng = random.Random(9)
    ids = [rng.getrandbits(128) for _ in range(1_000)]

    net = benchmark(PastryNetwork.build, ids)
    assert net.size == 1_000


def test_bench_replica_table(benchmark):
    rng = np.random.default_rng(1)
    ids = np.sort(IdSpaceModel.draw_unique_ids(10_000, rng))
    keys = IdSpaceModel.draw_unique_ids(25_000, rng)

    table = benchmark(replica_table, ids, keys, 3)
    assert table.shape == (25_000, 3)


def test_bench_symmetric_seal_open(benchmark):
    key = SymmetricKey(b"0123456789abcdef")
    payload = b"x" * 1024

    def roundtrip():
        return key.open(key.seal(payload))

    assert benchmark(roundtrip) == payload


def test_bench_onion_five_hops(benchmark):
    keys = [SymmetricKey(bytes([i + 1]) * 16) for i in range(5)]
    layers = [OnionLayer(1000 + i, k) for i, k in enumerate(keys)]
    payload = b"m" * 512

    def build_and_peel():
        blob = build_onion(layers, 77, payload)
        for k in keys[:-1]:
            blob = peel_layer(k, blob).inner
        return peel_layer(keys[-1], blob)

    final = benchmark(build_and_peel)
    assert final.is_exit and final.inner == payload
