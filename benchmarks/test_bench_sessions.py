"""Extension bench: long-running session survival under churn.

The paper's §1 motivating claim, quantified: remote-login-style
sessions over TAP keep near-perfect availability while hop nodes fail
between requests, whereas fixed-node tunnels break and must reform.
"""

from repro.experiments.runner import render_table, rows_to_csv
from repro.experiments.session_survival import (
    SessionSurvivalConfig,
    run_session_survival,
)

from conftest import paper_scale


def test_bench_session_survival(benchmark, emit):
    if paper_scale():
        config = SessionSurvivalConfig(failures_per_request=(0, 1, 3, 5))
    else:
        config = SessionSurvivalConfig.fast()
    rows = benchmark.pedantic(
        run_session_survival, args=(config,), rounds=1, iterations=1
    )

    emit(
        "ext_sessions",
        render_table(
            rows,
            columns=["failures_per_request", "tap_availability",
                     "fixed_availability", "tap_reforms", "fixed_reforms",
                     "fixed_mean_tunnel_life"],
            title="Extension — session survival under churn "
                  f"(N={config.num_nodes}, {config.sessions} sessions x "
                  f"{config.requests_per_session} requests, l={config.tunnel_length})",
        ),
        rows_to_csv(rows),
    )

    for row in rows:
        assert row["tap_availability"] >= row["fixed_availability"]
        assert row["tap_reforms"] <= row["fixed_reforms"]
    heaviest = rows[-1]
    assert heaviest["failures_per_request"] > 0
    # Under real churn, TAP sessions stay (near-)perfect while the
    # fixed baseline visibly degrades and churns through tunnels.
    assert heaviest["tap_availability"] >= 0.99
    assert heaviest["fixed_availability"] < 1.0
    assert heaviest["fixed_reforms"] > 0
